#include "difftest/difftest.h"

#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "codegen/baseline.h"
#include "dfl/frontend.h"
#include "isd/gen.h"
#include "server/compileservice.h"
#include "target/encode.h"
#include "trace/trace.h"

namespace record::difftest {

namespace {

/// Compile one (config, mode) pair, either directly or through the shared
/// compile service. Returns false on a capability rejection (clean
/// "unsupported" skip); throws std::logic_error if the service reports a
/// parse failure (the caller already parsed the source, so that would be a
/// generator bug).
bool compileVia(const CrossCheckOpts& opts, const std::string& source,
                const Program& prog, const TargetConfig& cfg, bool fastPath,
                std::shared_ptr<const TargetProgram>* out) {
  CodegenOptions copt = oracleOptions(fastPath, opts);
  if (opts.service) {
    server::CompileResponse resp =
        opts.service->compileSync({source, cfg, copt});
    if (resp.ok()) {
      *out = std::move(resp.prog);
      return true;
    }
    if (resp.key == 0)
      throw std::logic_error("compile service failed to parse oracle DFL:\n" +
                             resp.error + source);
    return false;  // cached or fresh capability rejection
  }
  try {
    RecordCompiler rc(cfg, copt);
    *out = std::make_shared<const TargetProgram>(rc.compile(prog).prog);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

/// Parse-once cache for CrossCheckOpts::isdPath descriptions. Throws
/// std::logic_error when the file is unreadable or does not compile: that
/// is harness misconfiguration, never a difftest finding.
const isdgen::TargetDesc& descForPath(const std::string& path) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<isdgen::TargetDesc>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[path];
  if (slot) return *slot;
  std::ifstream in(path);
  if (!in)
    throw std::logic_error("cannot read target description: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  DiagEngine diag;
  diag.setSourceName(path);
  auto desc = isdgen::parseTargetDesc(text.str(), diag);
  if (!desc || !isdgen::validateDesc(*desc, diag))
    throw std::logic_error("target description does not compile:\n" +
                           diag.str());
  slot = std::make_unique<isdgen::TargetDesc>(std::move(*desc));
  return *slot;
}

/// Generated-vs-hand-written equivalence for one (config, mode) pair:
/// compile with the rule set generated from opts.isdPath and require the
/// exact outcome the hand-written compile `hand` had (null = rejected) --
/// same accept/reject decision, same listing, same data layout, same
/// encoded words. Returns "" on agreement, a divergence message otherwise.
std::string compareGeneratedCompile(const CrossCheckOpts& opts,
                                    const Program& prog,
                                    const TargetConfig& cfg, bool fastPath,
                                    const TargetProgram* hand) {
  RuleSet rules = isdgen::rulesFor(descForPath(opts.isdPath), cfg);
  std::optional<TargetProgram> gen;
  try {
    RecordCompiler rc(std::move(rules), oracleOptions(fastPath, opts));
    gen = rc.compile(prog).prog;
  } catch (const std::runtime_error&) {
  }
  if (!hand && !gen) return "";
  if (hand && !gen)
    return "generated tables reject a program hand-written tables accept";
  if (!hand && gen)
    return "generated tables accept a program hand-written tables reject";
  if (std::string h = hand->listing(true), g = gen->listing(true); h != g)
    return "generated-table listing differs:\n--- hand-written ---\n" + h +
           "--- generated ---\n" + g;
  if (hand->symbolAddr != gen->symbolAddr || hand->dataInit != gen->dataInit)
    return "generated-table data layout differs";
  std::string herr, gerr;
  auto himg = encode(*hand, &herr);
  auto gimg = encode(*gen, &gerr);
  if (himg.has_value() != gimg.has_value())
    return "generated-table encodability differs (hand: " +
           (himg ? std::string("ok") : herr) +
           ", generated: " + (gimg ? std::string("ok") : gerr) + ")";
  if (himg && himg->words != gimg->words)
    return "generated-table encoding differs";
  return "";
}

}  // namespace

std::vector<SweepPoint> defaultSweep() {
  std::vector<SweepPoint> sweep;
  auto add = [&sweep](const char* name, auto mutate) {
    TargetConfig cfg;
    mutate(cfg);
    sweep.push_back({name, cfg});
  };
  add("default", [](TargetConfig&) {});
  add("no-mac", [](TargetConfig& c) { c.hasMac = false; });
  add("dual-mul", [](TargetConfig& c) {
    c.hasDualMul = true;
    c.memBanks = 2;
  });
  add("no-sat", [](TargetConfig& c) { c.hasSat = false; });
  add("two-banks", [](TargetConfig& c) { c.memBanks = 2; });
  add("two-ars", [](TargetConfig& c) { c.numAddrRegs = 2; });
  add("one-ar", [](TargetConfig& c) { c.numAddrRegs = 1; });
  add("no-rpt-dmov", [](TargetConfig& c) {
    c.hasRpt = false;
    c.hasDmov = false;
  });
  add("kitchen-sink", [](TargetConfig& c) {
    c.hasDualMul = true;
    c.memBanks = 2;
    c.numAddrRegs = 4;
    c.hasRpt = false;
  });
  return sweep;
}

std::string Repro::str() const {
  std::ostringstream os;
  os << "seed=" << seed << " config=" << config << " (" << configDesc << ") "
     << (fastPath ? "fast-path" : "slow-path") << "\n  divergence: "
     << divergence << "\n--- program ---\n" << source;
  return os.str();
}

CodegenOptions oracleOptions(bool fastPath, const CrossCheckOpts& opts) {
  CodegenOptions opt = recordOptions();
  opt.internExprs = fastPath;
  opt.memoLabels = fastPath;
  opt.pruneSearch = fastPath;
  opt.cacheRules = fastPath;
  opt.searchThreads = (fastPath && !opts.sequentialSearch) ? 0 : 1;
  return opt;
}

std::vector<Repro> crossCheck(const ProgSpec& spec,
                              const std::vector<SweepPoint>& sweep,
                              OracleStats* stats, const CrossCheckOpts& opts) {
  const std::string source = spec.render();
  DiagEngine diag;
  auto prog = dfl::parseDfl(source, diag);
  if (!prog)
    throw std::logic_error("difftest generator produced unparseable DFL:\n" +
                           diag.str() + source);
  Stimulus stim = makeStimulus(*prog, spec.seed, spec.ticks);
  if (stats) ++stats->programs;

  std::vector<Repro> out;
  for (const auto& pt : sweep) {
    for (bool fast : {true, false}) {
      std::shared_ptr<const TargetProgram> tp;
      bool accepted = compileVia(opts, source, *prog, pt.cfg, fast, &tp);
      if (!opts.isdPath.empty()) {
        // Generated-table equivalence rides along: the description-derived
        // compiler must reproduce the hand-written outcome exactly,
        // including the accept/reject decision.
        std::string gdiff = compareGeneratedCompile(
            opts, *prog, pt.cfg, fast, accepted ? tp.get() : nullptr);
        if (!gdiff.empty()) {
          Repro r;
          r.seed = spec.seed;
          r.config = pt.name;
          r.configDesc = pt.cfg.describe();
          r.fastPath = fast;
          r.divergence = gdiff;
          r.source = source;
          out.push_back(std::move(r));
          if (stats) ++stats->divergences;
        }
      }
      if (!accepted) {
        // Capability rejection (no saturation hardware, inexpressible wide
        // intermediate, ...): a clean skip, not a divergence.
        if (stats) ++stats->unsupported;
        continue;
      }
      if (stats) ++stats->runs;
      Measurement m = runAndCompare(*tp, *prog, stim);
      std::string engineDiff;
      if (m.ok && opts.checkEngines) {
        // The pipeline agrees with the golden model; also require the two
        // simulator engines to agree with each other (decode-once vs.
        // pre-decode reference), bit-for-bit.
        engineDiff = compareSimEngines(*tp, stim);
        if (engineDiff.empty()) continue;
        engineDiff = "simulator engine divergence: " + engineDiff;
      } else if (m.ok) {
        continue;
      }
      Repro r;
      r.seed = spec.seed;
      r.config = pt.name;
      r.configDesc = pt.cfg.describe();
      r.fastPath = fast;
      r.divergence = engineDiff.empty() ? m.error : engineDiff;
      r.source = source;
      // Recompile the diverging pair with tracing on so the repro carries
      // the full pass/remark history (tracing never changes codegen, so
      // this reproduces the same bad program).
      try {
        TraceContext trace;
        CodegenOptions topt = oracleOptions(fast, opts);
        topt.trace = &trace;
        RecordCompiler rc(pt.cfg, topt);
        rc.compile(*prog);
        r.traceText = trace.text();
        r.traceJson = trace.chromeJson();
      } catch (const std::exception& e) {
        r.traceText = std::string("trace recompile failed: ") + e.what();
      }
      out.push_back(std::move(r));
      if (stats) ++stats->divergences;
    }
  }
  return out;
}

StillFailing divergesAt(const SweepPoint& pt, bool fastPath,
                        const CrossCheckOpts& opts) {
  return [pt, fastPath, opts](const ProgSpec& spec) {
    const std::string source = spec.render();
    DiagEngine diag;
    auto prog = dfl::parseDfl(source, diag);
    if (!prog) return false;  // a mutation broke the program; reject it
    std::shared_ptr<const TargetProgram> tp;
    bool accepted = compileVia(opts, source, *prog, pt.cfg, fastPath, &tp);
    if (!opts.isdPath.empty() &&
        !compareGeneratedCompile(opts, *prog, pt.cfg, fastPath,
                                 accepted ? tp.get() : nullptr)
             .empty())
      return true;  // generated-table divergences minimize too
    if (!accepted)
      return false;  // now rejected instead of miscompiled; not the bug
    Stimulus stim = makeStimulus(*prog, spec.seed, spec.ticks);
    if (!runAndCompare(*tp, *prog, stim).ok) return true;
    // Engine-only divergences minimize too.
    return opts.checkEngines && !compareSimEngines(*tp, stim).empty();
  };
}

std::string uniqueArtifactBase(const std::string& base,
                               const std::string& ext) {
  auto exists = [](const std::string& path) {
    return static_cast<bool>(std::ifstream(path));
  };
  if (!exists(base + ext)) return base;
  for (int n = 2;; ++n) {
    std::string candidate = base + "-" + std::to_string(n);
    if (!exists(candidate + ext)) return candidate;
  }
}

}  // namespace record::difftest
