#include "difftest/difftest.h"

#include <cassert>
#include <set>
#include <sstream>

namespace record::difftest {

// ---------------------------------------------------------------------------
// GExpr
// ---------------------------------------------------------------------------

GExprPtr GExpr::constant(int64_t v) {
  auto e = std::make_shared<GExpr>();
  e->op = Op::Const;
  e->value = v;
  return e;
}

GExprPtr GExpr::ref(std::string name, int delay) {
  auto e = std::make_shared<GExpr>();
  e->op = Op::Ref;
  e->name = std::move(name);
  e->value = delay;
  return e;
}

GExprPtr GExpr::arrayRef(std::string name, GExprPtr index) {
  auto e = std::make_shared<GExpr>();
  e->op = Op::ArrayRef;
  e->name = std::move(name);
  e->kids.push_back(std::move(index));
  return e;
}

GExprPtr GExpr::unary(Op op, GExprPtr a) {
  auto e = std::make_shared<GExpr>();
  e->op = op;
  e->kids.push_back(std::move(a));
  return e;
}

GExprPtr GExpr::binary(Op op, GExprPtr a, GExprPtr b) {
  auto e = std::make_shared<GExpr>();
  e->op = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

namespace {

const char* opToken(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::SatAdd: return "+|";
    case Op::SatSub: return "-|";
    case Op::Shl: return "<<";
    case Op::Shr: return ">>";
    case Op::Shru: return ">>>";
    case Op::And: return "&";
    case Op::Or: return "|";
    case Op::Xor: return "^";
    default: return "?";
  }
}

}  // namespace

std::string renderExpr(const GExpr& e) {
  switch (e.op) {
    case Op::Const:
      // DFL literals denote 16-bit words, so a negative value renders as
      // its unsigned 16-bit representation (-1 -> 65535); the grammar has
      // no unary minus.
      if (e.value < 0)
        return std::to_string(static_cast<uint64_t>(e.value) & 0xffff);
      return std::to_string(e.value);
    case Op::Ref:
      if (e.value > 0) return e.name + "@" + std::to_string(e.value);
      return e.name;
    case Op::ArrayRef:
      return e.name + "[" + renderExpr(*e.kids[0]) + "]";
    case Op::Neg:
      return "(0 - " + renderExpr(*e.kids[0]) + ")";
    default:
      return "(" + renderExpr(*e.kids[0]) + " " + opToken(e.op) + " " +
             renderExpr(*e.kids[1]) + ")";
  }
}

std::string ProgSpec::render() const {
  std::ostringstream os;
  os << "program difftest_" << seed << ";\n";
  for (const auto& d : decls) {
    switch (d.kind) {
      case GDecl::Kind::Input: os << "input "; break;
      case GDecl::Kind::Output: os << "output "; break;
      case GDecl::Kind::Var: os << "var "; break;
    }
    os << d.name;
    if (d.arraySize > 0) os << "[" << d.arraySize << "]";
    if (d.delay > 0) os << " delay " << d.delay;
    os << " : fix;\n";
  }
  os << "begin\n";
  auto emitStmt = [&os](const GStmt& s, const char* pad) {
    os << pad << s.lhs;
    if (s.lhsIndex) os << "[" << renderExpr(*s.lhsIndex) << "]";
    os << " := " << renderExpr(*s.rhs) << ";\n";
  };
  for (const auto& it : items) {
    if (!it.isLoop) {
      emitStmt(it.stmts[0], "  ");
      continue;
    }
    os << "  for " << it.ivar << " := " << it.lo << " to " << it.hi
       << " do\n";
    for (const auto& s : it.stmts) emitStmt(s, "    ");
    os << "  endfor\n";
  }
  os << "end\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

namespace {

/// splitmix64: tiny, high-quality, and fully specified -- identical streams
/// on every platform (std::uniform_int_distribution is not portable).
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  int range(int n) { return static_cast<int>(next() % static_cast<uint64_t>(n)); }
  bool chance(int pct) { return range(100) < pct; }
};

/// Boundary-biased 16-bit constant pool: half overflow-provoking corner
/// values, half full-range random.
int64_t pickValue(Rng& rng) {
  static const int64_t kCorners[] = {0,      1,       -1,      2,
                                     0x7fff, -0x8000, 0x7ffe,  -0x7fff,
                                     0x4000, -0x4000, 0x2000,  0x5555};
  if (rng.chance(50))
    return kCorners[rng.range(static_cast<int>(sizeof(kCorners) /
                                               sizeof(kCorners[0])))];
  return static_cast<int64_t>(rng.next() % 0x10000u) - 0x8000;
}

struct GenCtx {
  Rng& rng;
  const std::vector<GDecl>& decls;
  // Loop context: induction variable usable in array indices.
  std::string ivar;   // empty outside loops
  int ivarMax = 0;    // loop hi bound (inclusive)
};

const GDecl* pickDecl(GenCtx& cx, bool wantArray) {
  std::vector<const GDecl*> pool;
  for (const auto& d : cx.decls) {
    if (d.kind == GDecl::Kind::Output) continue;  // outputs are write-only
    if ((d.arraySize > 0) != wantArray) continue;
    pool.push_back(&d);
  }
  if (pool.empty()) return nullptr;
  return pool[cx.rng.range(static_cast<int>(pool.size()))];
}

GExprPtr genIndex(GenCtx& cx, int arraySize) {
  // Inside a loop whose bounds fit the array, prefer the induction
  // variable (exercises AR streaming / post-increment addressing).
  if (!cx.ivar.empty() && cx.ivarMax < arraySize && cx.rng.chance(70))
    return GExpr::ref(cx.ivar);
  if (cx.rng.chance(50)) return GExpr::constant(cx.rng.range(arraySize));
  // Dynamic index, mask-guarded to stay in bounds (sizes are powers of 2).
  const GDecl* d = pickDecl(cx, /*wantArray=*/false);
  GExprPtr base = d ? GExpr::ref(d->name) : GExpr::constant(cx.rng.range(arraySize));
  return GExpr::binary(Op::And, std::move(base),
                       GExpr::constant(arraySize - 1));
}

GExprPtr genLeaf(GenCtx& cx) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    int roll = cx.rng.range(100);
    if (roll < 55) {
      const GDecl* d = pickDecl(cx, /*wantArray=*/false);
      if (!d) continue;
      int delay = d->delay > 0 && cx.rng.chance(40)
                      ? 1 + cx.rng.range(d->delay)
                      : 0;
      return GExpr::ref(d->name, delay);
    }
    if (roll < 75) {
      const GDecl* d = pickDecl(cx, /*wantArray=*/true);
      if (!d) continue;
      return GExpr::arrayRef(d->name, genIndex(cx, d->arraySize));
    }
    break;
  }
  return GExpr::constant(pickValue(cx.rng));
}

GExprPtr genExpr(GenCtx& cx, int depth) {
  if (depth <= 0 || cx.rng.chance(20)) return genLeaf(cx);
  int roll = cx.rng.range(100);
  if (roll < 22)
    return GExpr::binary(Op::Add, genExpr(cx, depth - 1),
                         genExpr(cx, depth - 1));
  if (roll < 38)
    return GExpr::binary(Op::Sub, genExpr(cx, depth - 1),
                         genExpr(cx, depth - 1));
  if (roll < 54)
    return GExpr::binary(Op::Mul, genExpr(cx, depth - 1),
                         genExpr(cx, depth - 1));
  if (roll < 62)  // shift amounts stay small and constant (grammar rule)
    return GExpr::binary(Op::Shl, genExpr(cx, depth - 1),
                         GExpr::constant(1 + cx.rng.range(8)));
  if (roll < 70)
    return GExpr::binary(Op::Shr, genExpr(cx, depth - 1),
                         GExpr::constant(1 + cx.rng.range(8)));
  if (roll < 74)
    return GExpr::binary(Op::Shru, genExpr(cx, depth - 1),
                         GExpr::constant(1 + cx.rng.range(8)));
  if (roll < 80)
    return GExpr::binary(Op::And, genExpr(cx, depth - 1), genLeaf(cx));
  if (roll < 85)
    return GExpr::binary(Op::Or, genExpr(cx, depth - 1), genLeaf(cx));
  if (roll < 90)
    return GExpr::binary(Op::Xor, genExpr(cx, depth - 1), genLeaf(cx));
  if (roll < 95)
    // Keep one saturating operand simple: both-wide shapes are correctly
    // rejected by the compiler, and we want mostly-compilable programs.
    return GExpr::binary(Op::SatAdd, genExpr(cx, depth - 1), genLeaf(cx));
  return GExpr::binary(Op::SatSub, genExpr(cx, depth - 1), genLeaf(cx));
}

}  // namespace

ProgSpec generateProgram(uint64_t seed) {
  Rng rng(seed);
  ProgSpec spec;
  spec.seed = seed;
  spec.ticks = 3 + rng.range(4);

  // Declarations. Names are stable so repros read uniformly.
  int nIn = 2 + rng.range(2);
  for (int i = 0; i < nIn; ++i) {
    GDecl d;
    d.kind = GDecl::Kind::Input;
    d.name = "i" + std::to_string(i);
    if (rng.chance(30)) d.delay = 1 + rng.range(2);
    spec.decls.push_back(d);
  }
  int nOut = 1 + rng.range(2);
  for (int i = 0; i < nOut; ++i)
    spec.decls.push_back({GDecl::Kind::Output, "o" + std::to_string(i), 0, 0});
  int nVar = rng.range(3);
  for (int i = 0; i < nVar; ++i) {
    GDecl d;
    d.kind = GDecl::Kind::Var;
    d.name = "v" + std::to_string(i);
    if (rng.chance(35)) d.delay = 1 + rng.range(2);
    spec.decls.push_back(d);
  }
  if (rng.chance(60)) {
    GDecl d;
    d.kind = GDecl::Kind::Var;
    d.name = "a0";
    d.arraySize = rng.chance(50) ? 4 : 8;  // powers of 2: maskable indices
    spec.decls.push_back(d);
  }

  GenCtx cx{rng, spec.decls, "", 0};

  // Writable left-hand sides: outputs and vars.
  auto pickLhs = [&](bool inLoop) {
    std::vector<const GDecl*> pool;
    for (const auto& d : spec.decls)
      if (d.kind != GDecl::Kind::Input) pool.push_back(&d);
    const GDecl* d = pool[rng.range(static_cast<int>(pool.size()))];
    GStmt s;
    s.lhs = d->name;
    if (d->arraySize > 0)
      s.lhsIndex = inLoop && !cx.ivar.empty() && cx.ivarMax < d->arraySize
                       ? GExpr::ref(cx.ivar)
                       : GExpr::constant(rng.range(d->arraySize));
    return s;
  };

  int nItems = 1 + rng.range(3);
  for (int i = 0; i < nItems; ++i) {
    GItem it;
    if (rng.chance(30)) {
      it.isLoop = true;
      it.ivar = "k" + std::to_string(i);
      it.lo = 0;
      it.hi = 1 + rng.range(5);
      cx.ivar = it.ivar;
      cx.ivarMax = it.hi;
      int nBody = 1 + rng.range(2);
      for (int b = 0; b < nBody; ++b) {
        GStmt s = pickLhs(/*inLoop=*/true);
        s.rhs = genExpr(cx, 2 + rng.range(2));
        it.stmts.push_back(std::move(s));
      }
      cx.ivar.clear();
      cx.ivarMax = 0;
    } else {
      GStmt s = pickLhs(/*inLoop=*/false);
      s.rhs = genExpr(cx, 2 + rng.range(3));
      it.stmts.push_back(std::move(s));
    }
    spec.items.push_back(std::move(it));
  }

  // Every output gets at least one assignment so the comparison is not
  // trivially 0 == 0.
  for (const auto& d : spec.decls) {
    if (d.kind != GDecl::Kind::Output) continue;
    bool assigned = false;
    for (const auto& it : spec.items)
      for (const auto& s : it.stmts) assigned |= s.lhs == d.name;
    if (assigned) continue;
    GItem it;
    GStmt s;
    s.lhs = d.name;
    s.rhs = genExpr(cx, 2);
    it.stmts.push_back(std::move(s));
    spec.items.push_back(std::move(it));
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Corpus round trip + mutation
// ---------------------------------------------------------------------------

namespace {

/// The frontend alpha-renames scoped symbols with a ".<scope>" suffix
/// ("k0" becomes "k0.0" inside its loop). DFL identifiers cannot contain
/// '.', so lifting a parsed program back into renderable spec form must
/// strip the suffix. specFromProgram rejects specs where stripping would
/// alias two distinct symbols.
std::string baseName(const std::string& n) {
  auto dot = n.find('.');
  return dot == std::string::npos ? n : n.substr(0, dot);
}

GExprPtr gexprFromExpr(const Expr& e) {
  switch (e.op) {
    case Op::Const:
      return GExpr::constant(e.value);
    case Op::Ref:
      return GExpr::ref(baseName(e.sym->name), static_cast<int>(e.value));
    case Op::ArrayRef: {
      GExprPtr idx = gexprFromExpr(*e.kids[0]);
      if (!idx) return nullptr;
      return GExpr::arrayRef(baseName(e.sym->name), std::move(idx));
    }
    case Op::Neg: {
      GExprPtr a = gexprFromExpr(*e.kids[0]);
      if (!a) return nullptr;
      return GExpr::unary(Op::Neg, std::move(a));
    }
    case Op::Store:
      return nullptr;  // pattern-tree node; never in a lowered program
    default: {
      if (e.kids.size() != 2) return nullptr;
      GExprPtr a = gexprFromExpr(*e.kids[0]);
      GExprPtr b = gexprFromExpr(*e.kids[1]);
      if (!a || !b) return nullptr;
      return GExpr::binary(e.op, std::move(a), std::move(b));
    }
  }
}

bool gstmtFromStmt(const Stmt& s, GStmt* out) {
  if (s.kind != Stmt::Kind::Assign || !s.lhs) return false;
  out->lhs = baseName(s.lhs->name);
  out->lhsIndex = nullptr;
  if (s.lhsIndex) {
    out->lhsIndex = gexprFromExpr(*s.lhsIndex);
    if (!out->lhsIndex) return false;
  }
  out->rhs = s.rhs ? gexprFromExpr(*s.rhs) : nullptr;
  return out->rhs != nullptr;
}

/// Operator families the mutator swaps within: any member is valid wherever
/// another is (same arity, same operand-shape constraints).
Op swapWithinFamily(Op op, Rng& rng) {
  static const Op kArith[] = {Op::Add, Op::Sub, Op::Mul};
  static const Op kBitwise[] = {Op::And, Op::Or, Op::Xor};
  static const Op kShift[] = {Op::Shl, Op::Shr, Op::Shru};
  static const Op kSat[] = {Op::SatAdd, Op::SatSub};
  auto pick = [&rng](const Op* fam, int n) { return fam[rng.range(n)]; };
  switch (op) {
    case Op::Add: case Op::Sub: case Op::Mul:
      return pick(kArith, 3);
    case Op::And: case Op::Or: case Op::Xor:
      return pick(kBitwise, 3);
    case Op::Shl: case Op::Shr: case Op::Shru:
      return pick(kShift, 3);
    case Op::SatAdd: case Op::SatSub:
      return pick(kSat, 2);
    default:
      return op;
  }
}

/// Rebuild `e` with small random edits. Array-index and shift-amount
/// subtrees are copied untouched (they carry bounds/grammar invariants the
/// mutator must not break); elsewhere constants get re-rolled, operators
/// swap within their family, and leaves occasionally become fresh leaves.
GExprPtr mutateExpr(GenCtx& cx, const GExprPtr& e) {
  switch (e->op) {
    case Op::Const:
      if (cx.rng.chance(60)) return GExpr::constant(pickValue(cx.rng));
      return e;
    case Op::Ref:
      if (cx.rng.chance(25)) return genLeaf(cx);
      return e;
    case Op::ArrayRef:
      // The index subtree is load-bearing (masked / ivar-bounded); replace
      // the whole reference with a fresh leaf or keep it as-is.
      if (cx.rng.chance(20)) return genLeaf(cx);
      return e;
    case Op::Neg:
      return GExpr::unary(Op::Neg, mutateExpr(cx, e->kids[0]));
    case Op::Shl: case Op::Shr: case Op::Shru: {
      Op op = cx.rng.chance(30) ? swapWithinFamily(e->op, cx.rng) : e->op;
      return GExpr::binary(op, mutateExpr(cx, e->kids[0]), e->kids[1]);
    }
    default: {
      if (e->kids.size() != 2) return e;
      Op op = cx.rng.chance(30) ? swapWithinFamily(e->op, cx.rng) : e->op;
      return GExpr::binary(op, mutateExpr(cx, e->kids[0]),
                           mutateExpr(cx, e->kids[1]));
    }
  }
}

}  // namespace

std::optional<ProgSpec> specFromProgram(const Program& prog, uint64_t seed,
                                        int ticks) {
  ProgSpec spec;
  spec.seed = seed;
  spec.ticks = ticks;
  std::set<std::string> names;
  for (const auto& sym : prog.symbols.all()) {
    // Every name is suffix-stripped (see baseName); if that ever aliases
    // two distinct symbols the lifted spec would change meaning, so bail.
    if (!names.insert(baseName(sym->name)).second) return std::nullopt;
    if (sym->kind == SymKind::Induction) continue;  // implicit in `for`
    if (sym->type != Type::Fix) return std::nullopt;
    GDecl d;
    switch (sym->kind) {
      case SymKind::Input: d.kind = GDecl::Kind::Input; break;
      case SymKind::Output: d.kind = GDecl::Kind::Output; break;
      case SymKind::Var: d.kind = GDecl::Kind::Var; break;
      default: return std::nullopt;  // Const symbols: not in the grammar
    }
    d.name = sym->name;
    d.arraySize = sym->arraySize;
    d.delay = sym->delayDepth;
    spec.decls.push_back(std::move(d));
  }
  for (const Stmt& s : prog.body) {
    GItem it;
    if (s.kind == Stmt::Kind::For) {
      if (s.step != 1 || !s.ivar) return std::nullopt;
      it.isLoop = true;
      it.ivar = baseName(s.ivar->name);
      it.lo = static_cast<int>(s.lo);
      it.hi = static_cast<int>(s.hi);
      for (const Stmt& b : s.body) {
        GStmt gs;
        if (!gstmtFromStmt(b, &gs)) return std::nullopt;
        it.stmts.push_back(std::move(gs));
      }
      if (it.stmts.empty()) return std::nullopt;
    } else {
      GStmt gs;
      if (!gstmtFromStmt(s, &gs)) return std::nullopt;
      it.stmts.push_back(std::move(gs));
    }
    spec.items.push_back(std::move(it));
  }
  if (spec.items.empty()) return std::nullopt;
  return spec;
}

ProgSpec mutateSpec(const ProgSpec& base, uint64_t seed) {
  // Distinct stream from generateProgram's so seed N's mutant and seed N's
  // generated program are unrelated.
  Rng rng(seed ^ 0x6d757461746full);  // "mutato"
  ProgSpec spec = base;
  spec.seed = seed;  // renames the program and re-rolls the stimulus
  GenCtx cx{rng, spec.decls, "", 0};

  auto mutateIn = [&](GItem& it) {
    if (it.isLoop) {
      cx.ivar = it.ivar;
      cx.ivarMax = it.hi;
    }
    GStmt& s = it.stmts[rng.range(static_cast<int>(it.stmts.size()))];
    if (rng.chance(40))
      s.rhs = genExpr(cx, 2 + rng.range(2));  // regenerate wholesale
    else
      s.rhs = mutateExpr(cx, s.rhs);
    cx.ivar.clear();
    cx.ivarMax = 0;
  };

  int nMut = 1 + rng.range(2);
  for (int m = 0; m < nMut; ++m)
    mutateIn(spec.items[rng.range(static_cast<int>(spec.items.size()))]);

  // Occasionally graft a fresh straight-line statement onto the end.
  if (rng.chance(25)) {
    std::vector<const GDecl*> pool;
    for (const auto& d : spec.decls)
      if (d.kind != GDecl::Kind::Input) pool.push_back(&d);
    if (!pool.empty()) {
      const GDecl* d = pool[rng.range(static_cast<int>(pool.size()))];
      GItem it;
      GStmt s;
      s.lhs = d->name;
      if (d->arraySize > 0)
        s.lhsIndex = GExpr::constant(rng.range(d->arraySize));
      s.rhs = genExpr(cx, 2 + rng.range(2));
      it.stmts.push_back(std::move(s));
      spec.items.push_back(std::move(it));
    }
  }
  if (rng.chance(25)) spec.ticks = 3 + rng.range(4);
  return spec;
}

Stimulus makeStimulus(const Program& prog, uint64_t seed, int ticks) {
  Rng rng(seed ^ 0xd1f7e57ull);
  Stimulus stim;
  stim.ticks = ticks;
  for (const auto& sym : prog.symbols.all()) {
    if (sym->kind != SymKind::Input) continue;
    if (sym->isArray()) {
      std::vector<int64_t> vals(static_cast<size_t>(sym->arraySize));
      for (auto& v : vals) v = pickValue(rng);
      stim.arrays[sym->name] = std::move(vals);
    } else {
      std::vector<int64_t> vals(static_cast<size_t>(ticks));
      for (auto& v : vals) v = pickValue(rng);
      stim.scalars[sym->name] = std::move(vals);
    }
  }
  return stim;
}

}  // namespace record::difftest
