#include "difftest/shard.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "server/compileservice.h"

#include "support/strings.h"
#include "support/threadpool.h"

namespace record::difftest {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Field separator: a byte no rendered text contains, so adjacent fields
  // can never alias ("ab"+"c" vs "a"+"bc").
  h ^= 0xff;
  h *= kFnvPrime;
  return h;
}

/// The generator names every program after its seed ("program
/// difftest_17;"), so two seeds that minimize to the same bug would still
/// hash apart on the name alone. Neutralize the program name before
/// hashing; everything else in the rendering is canonical already.
std::string canonicalizeProgramName(const std::string& source) {
  constexpr const char* kw = "program ";
  auto at = source.find(kw);
  if (at == std::string::npos) return source;
  auto nameBegin = at + std::strlen(kw);
  auto semi = source.find(';', nameBegin);
  if (semi == std::string::npos) return source;
  return source.substr(0, nameBegin) + "_" + source.substr(semi);
}

}  // namespace

uint64_t divergenceKey(const std::string& minimizedSource,
                       const std::string& configName, const TargetConfig& cfg,
                       bool fastPath) {
  uint64_t h = kFnvOffset;
  h = fnv1a(h, canonicalizeProgramName(minimizedSource));
  h = fnv1a(h, configName);
  // describe() covers every feature bit plus banks/ars; dataWords is the
  // one structural field it omits.
  h = fnv1a(h, cfg.describe());
  h = fnv1a(h, std::to_string(cfg.dataWords));
  h = fnv1a(h, fastPath ? "fast" : "slow");
  return h;
}

std::string keyHex(uint64_t key) { return formatv("%016llx", (unsigned long long)key); }

uint64_t SoakReport::uniqueSetDigest() const {
  uint64_t h = kFnvOffset;
  for (const auto& u : unique) {
    h ^= u.key;
    h *= kFnvPrime;
  }
  return h;
}

std::string SoakReport::reportText() const {
  std::ostringstream os;
  os << "difftest_soak: " << stats.programs << " programs, " << stats.runs
     << " (config x mode) runs, " << stats.unsupported
     << " unsupported skips, " << rawDivergences << " divergences ("
     << unique.size() << " unique) in " << formatv("%.1f", seconds)
     << "s [jobs=" << jobs << " shards=" << shards << "]\n"
     << "unique-set digest: " << keyHex(uniqueSetDigest()) << "\n";
  for (const auto& u : unique)
    os << u.repro.config << " " << (u.repro.fastPath ? "fast" : "slow")
       << " key=" << keyHex(u.key) << " hits=" << u.hits
       << " seed=" << u.repro.seed << "\n";
  for (const auto& u : unique)
    os << "--- key " << keyHex(u.key) << " minimized (" << u.repro.config
       << " " << (u.repro.fastPath ? "fast" : "slow") << ") ---\n"
       << u.minimizedSource;
  return os.str();
}

namespace {

struct RawDiv {
  uint64_t seed = 0;
  int sweepIndex = 0;  // position of the config in the sweep (sort key)
  Repro repro;
  ProgSpec minimized;
  std::string minimizedSource;
  uint64_t key = 0;
};

struct ShardResult {
  OracleStats stats;
  unsigned long long seeds = 0;
  std::vector<RawDiv> divs;
};

}  // namespace

SoakReport runShardedSoak(const SoakOptions& opt,
                          const std::vector<SweepPoint>& sweep) {
  const int jobs = std::max(1, opt.jobs);
  int shards = opt.shards;
  if (shards <= 0) {
    // Fixed ranges get a few shards per worker so an unlucky shard full of
    // slow-to-compile programs cannot serialize the tail; time-bounded
    // runs stream open-endedly, so one shard per worker suffices.
    shards = opt.seedCount >= 0 ? jobs * 4 : jobs;
    if (opt.seedCount >= 0 && opt.seedCount < shards)
      shards = std::max<long long>(1, opt.seedCount);
  }

  std::map<std::string, int> sweepIndex;
  for (size_t i = 0; i < sweep.size(); ++i)
    sweepIndex[sweep[i].name] = static_cast<int>(i);

  CrossCheckOpts ccOpts;
  ccOpts.sequentialSearch = true;
  ccOpts.service = opt.service;
  ccOpts.isdPath = opt.isdPath;
  // Seed-pure program choice: mutate a corpus shape or generate fresh,
  // decided by a hash of the seed alone so the work set stays independent
  // of jobs/shards scheduling.
  auto specForSeed = [&](uint64_t seed) {
    if (!opt.mutationCorpus.empty() && opt.mutationPct > 0) {
      uint64_t z = seed + 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      if (static_cast<int>(z % 100) < opt.mutationPct) {
        const auto& base =
            opt.mutationCorpus[(z / 100) % opt.mutationCorpus.size()];
        return mutateSpec(base, seed);
      }
    }
    return generateProgram(seed);
  };
  auto doCheck = [&](const ProgSpec& spec, OracleStats* stats) {
    if (opt.check) return opt.check(spec, sweep, stats);
    return crossCheck(spec, sweep, stats, ccOpts);
  };
  // Predicate for minimizing one divergence. With the test-seam check
  // function installed, re-run it on a single-point sweep; otherwise use
  // the cheaper single-(config, mode) oracle probe.
  auto stillFails = [&](const SweepPoint& pt, bool fastPath) -> StillFailing {
    if (!opt.check) return divergesAt(pt, fastPath, ccOpts);
    auto check = opt.check;
    std::vector<SweepPoint> one{pt};
    return [check, one, fastPath](const ProgSpec& cand) {
      OracleStats scratch;
      for (const auto& r : check(cand, one, &scratch))
        if (r.fastPath == fastPath) return true;
      return false;
    };
  };

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::vector<ShardResult> results(static_cast<size_t>(shards));
  std::mutex progressMu;
  // Cross-shard aggregates for the progress lines: total throughput, raw
  // divergence count, and the live set of divergence keys (the dedup the
  // final report performs, maintained incrementally so "unique" is honest
  // mid-run).
  std::atomic<unsigned long long> totalSeeds{0};
  std::atomic<int> totalDivs{0};
  std::set<uint64_t> liveKeys;  // guarded by progressMu
  auto runShard = [&](int s) {
    ShardResult& res = results[static_cast<size_t>(s)];
    // Splittable stream: shard s owns seed offsets s, s+S, s+2S, ... so
    // the union over shards tiles the range exactly once whatever the
    // worker count.
    for (unsigned long long k = static_cast<unsigned long long>(s);;
         k += static_cast<unsigned long long>(shards)) {
      if (opt.seedCount >= 0) {
        if (k >= static_cast<unsigned long long>(opt.seedCount)) break;
      } else if (elapsed() >= static_cast<double>(opt.seconds)) {
        break;
      }
      const uint64_t seed = opt.baseSeed + k;
      ProgSpec spec = specForSeed(seed);
      ++res.seeds;
      for (auto& r : doCheck(spec, &res.stats)) {
        RawDiv d;
        d.seed = seed;
        auto it = sweepIndex.find(r.config);
        d.sweepIndex =
            it != sweepIndex.end() ? it->second : static_cast<int>(sweep.size());
        d.minimized = spec;
        if (opt.minimizeDivergences) {
          for (const auto& pt : sweep)
            if (pt.name == r.config) {
              d.minimized = minimize(spec, stillFails(pt, r.fastPath),
                                     opt.minimizeProbes);
              break;
            }
        }
        d.minimizedSource = d.minimized.render();
        const TargetConfig* cfg = nullptr;
        for (const auto& pt : sweep)
          if (pt.name == r.config) cfg = &pt.cfg;
        d.key = divergenceKey(d.minimizedSource, r.config,
                              cfg ? *cfg : TargetConfig{}, r.fastPath);
        d.repro = std::move(r);
        totalDivs.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(progressMu);
          liveKeys.insert(d.key);
        }
        res.divs.push_back(std::move(d));
      }
      totalSeeds.fetch_add(1, std::memory_order_relaxed);
      if (opt.progress && res.seeds % 100 == 0) {
        unsigned long long seen = totalSeeds.load(std::memory_order_relaxed);
        double sec = elapsed();
        std::lock_guard<std::mutex> lock(progressMu);
        std::string line = formatv(
            "[soak] %llu programs (%.0f/s), %d divergences (%d unique)", seen,
            sec > 0 ? static_cast<double>(seen) / sec : 0.0,
            totalDivs.load(std::memory_order_relaxed), (int)liveKeys.size());
        if (opt.service) {
          server::ServiceStats st = opt.service->stats();
          line += formatv(", service hit rate %.0f%%",
                          st.requests > 0
                              ? 100.0 *
                                    static_cast<double>(
                                        st.servedWithoutCompile()) /
                                    static_cast<double>(st.requests)
                              : 0.0);
        }
        opt.progress(line);
      }
    }
  };

  {
    ThreadPool pool(jobs - 1);
    pool.parallelFor(shards, runShard);
  }

  // Deterministic merge: order raw divergences by (seed, sweep position,
  // mode) — a pure function of the work set — then dedupe in that order.
  SoakReport report;
  report.jobs = jobs;
  report.shards = shards;
  std::vector<RawDiv> all;
  for (auto& res : results) {
    report.stats.programs += res.stats.programs;
    report.stats.runs += res.stats.runs;
    report.stats.unsupported += res.stats.unsupported;
    report.stats.divergences += res.stats.divergences;
    report.seedsProcessed += res.seeds;
    for (auto& d : res.divs) all.push_back(std::move(d));
  }
  std::sort(all.begin(), all.end(), [](const RawDiv& a, const RawDiv& b) {
    if (a.seed != b.seed) return a.seed < b.seed;
    if (a.sweepIndex != b.sweepIndex) return a.sweepIndex < b.sweepIndex;
    return a.repro.fastPath > b.repro.fastPath;  // fast before slow
  });
  report.rawDivergences = static_cast<int>(all.size());
  std::map<uint64_t, size_t> byKey;
  for (auto& d : all) {
    auto [it, inserted] = byKey.emplace(d.key, report.unique.size());
    if (!inserted) {
      ++report.unique[it->second].hits;
      continue;
    }
    UniqueDivergence u;
    u.key = d.key;
    u.hits = 1;
    u.repro = std::move(d.repro);
    u.minimized = std::move(d.minimized);
    u.minimizedSource = std::move(d.minimizedSource);
    report.unique.push_back(std::move(u));
  }
  report.seconds = elapsed();
  return report;
}

}  // namespace record::difftest
