// Sharded differential-testing soak: splits a seed range over
// support/threadpool workers, funnels every divergence through the
// minimizer, and dedupes by a canonical hash of the minimized program +
// target configuration + compile mode, so a long soak reports *unique*
// bugs instead of re-printing the same miscompile for every seed that
// happens to tickle it.
//
// Determinism contract (pinned by tests/difftest_test.cpp): for a fixed
// seed range, the merged unique-divergence set — keys, counts, order,
// and representative repros — is a pure function of (baseSeed, seedCount,
// sweep), independent of --jobs and --shards. Two properties make that
// hold:
//   1. Seed streams are splittable: shard s of S processes exactly the
//      seeds {base + s, base + s + S, base + s + 2S, ...} within the
//      range, and program generation is already a pure function of the
//      seed, so the union of work never depends on scheduling.
//   2. Shards never share mutable state: each worker runs its own
//      compilers (own FastPathState), writes into its own result slot,
//      and the merge re-sorts raw divergences by (seed, config, mode)
//      before deduping, erasing any trace of completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "difftest/difftest.h"

namespace record::difftest {

// ---------------------------------------------------------------------------
// Canonical dedupe key
// ---------------------------------------------------------------------------

/// FNV-1a 64 over a canonical rendering of (minimized program source,
/// sweep-point name, full TargetConfig shape, compile mode). Two
/// divergences from different seeds that minimize to the same program on
/// the same configuration are the same bug; the seed-bearing program name
/// ("program difftest_17;") is neutralized before hashing so it cannot
/// split them.
uint64_t divergenceKey(const std::string& minimizedSource,
                       const std::string& configName, const TargetConfig& cfg,
                       bool fastPath);

/// The key rendered the way reports and corpus files spell it
/// (16 hex digits, zero-padded).
std::string keyHex(uint64_t key);

// ---------------------------------------------------------------------------
// Sharded soak
// ---------------------------------------------------------------------------

struct SoakOptions {
  uint64_t baseSeed = 1;
  /// >= 0: process exactly this many seeds (deterministic mode).
  /// < 0: run until `seconds` elapses (each shard streams open-endedly).
  long long seedCount = -1;
  long seconds = 60;
  /// Worker threads, including the calling thread (>= 1).
  int jobs = 1;
  /// Work units; 0 = auto (jobs for time-bounded runs, a small multiple
  /// of jobs for fixed ranges so stragglers rebalance).
  int shards = 0;
  /// Run each divergence through the greedy minimizer before hashing.
  /// Turning this off hashes the un-minimized spec (cheaper, but seeds
  /// that tickle the same bug then dedupe less well).
  bool minimizeDivergences = true;
  int minimizeProbes = 400;
  /// Corpus-guided mutation: specs rebuilt from minimized corpus entries
  /// (specFromProgram). When nonempty, `mutationPct` percent of seeds
  /// mutate a corpus shape (mutateSpec) instead of generating from
  /// scratch, so the soak keeps probing the neighborhoods of every bug
  /// ever found. The mutate-vs-generate decision and the corpus pick are
  /// pure functions of the seed, preserving the jobs/shards-invariance
  /// contract above.
  std::vector<ProgSpec> mutationCorpus;
  int mutationPct = 25;
  /// Route every oracle compile through this compile service
  /// (CrossCheckOpts::service): a concurrency stress of the
  /// content-addressed cache -- the fast/slow duplicate compiles of one
  /// seed coalesce or hit, and any stale or torn cached program shows up
  /// as a divergence. Null = direct compiles.
  server::CompileService* service = nullptr;
  /// Target-description path (CrossCheckOpts::isdPath): every oracle
  /// compile is shadowed by a generated-table compile and any output
  /// difference reported as a divergence. Empty = off.
  std::string isdPath;
  /// Test seam: replaces crossCheck(). Receives the spec, the sweep and a
  /// per-shard stats accumulator; must be safe to call from several
  /// threads at once. Null = the real oracle.
  std::function<std::vector<Repro>(const ProgSpec&,
                                   const std::vector<SweepPoint>&,
                                   OracleStats*)>
      check;
  /// Optional progress sink (called under a mutex from worker threads).
  /// Lines aggregate across shards: programs checked and seeds/s, raw and
  /// unique divergence counts, and -- when `service` is attached -- its
  /// cache hit rate.
  std::function<void(const std::string&)> progress;
};

/// One deduped bug: the canonical key, how many raw (seed, config, mode)
/// divergences collapsed into it, and the first-by-seed-order repro with
/// its minimized spec.
struct UniqueDivergence {
  uint64_t key = 0;
  int hits = 0;
  Repro repro;         // repro.source holds the ORIGINAL program text
  ProgSpec minimized;  // minimized spec (== original spec when
                       // minimizeDivergences is off)
  std::string minimizedSource;
};

struct SoakReport {
  OracleStats stats;            // summed over all shards
  unsigned long long seedsProcessed = 0;
  int rawDivergences = 0;       // before dedupe (== stats.divergences)
  std::vector<UniqueDivergence> unique;  // sorted by first (seed, config, mode)
  int jobs = 1;
  int shards = 1;
  double seconds = 0;           // steady-clock wall time of the run

  /// Deterministic digest of the unique set (order-sensitive combine of
  /// the keys): two runs found the same bugs iff their digests match.
  uint64_t uniqueSetDigest() const;
  /// One line per unique divergence: "<key> hits=<n> seed=<s> <config>
  /// <mode>", plus a summary header — the report artifact CI uploads.
  std::string reportText() const;
};

/// Run the sharded soak. Blocks until the seed range is exhausted (or the
/// time budget expires) and every shard joined.
SoakReport runShardedSoak(const SoakOptions& opt,
                          const std::vector<SweepPoint>& sweep);

}  // namespace record::difftest
