#include "difftest/corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "ir/interp.h"
#include "support/strings.h"

namespace record::difftest {

namespace {

constexpr const char* kMagic = "difftest-corpus v1";

std::string renderValues(const std::vector<int64_t>& vals) {
  std::string out;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(vals[i]);
  }
  return out;
}

bool parseValues(const std::string& text, std::vector<int64_t>* out,
                 std::string* error) {
  for (const auto& tok : split(trim(text), ' ')) {
    if (tok.empty()) continue;
    char* end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 10);
    if (!end || *end != '\0') {
      *error = "bad value '" + tok + "'";
      return false;
    }
    out->push_back(v);
  }
  return true;
}

/// Run the golden interpreter on (prog, stim) and collect every scalar
/// output's per-tick trace.
std::map<std::string, std::vector<int64_t>> goldenTraces(const Program& prog,
                                                         const Stimulus& stim) {
  Interp gold(prog);
  for (const auto& [name, vals] : stim.arrays) gold.setArray(name, vals);
  for (const auto& [name, vals] : stim.scalars) gold.setStream(name, vals);
  gold.run(stim.ticks);
  std::map<std::string, std::vector<int64_t>> traces;
  for (const auto& sym : prog.symbols.all()) {
    if (sym->kind != SymKind::Output || sym->isArray()) continue;
    traces[sym->name] = gold.trace(sym->name);
  }
  return traces;
}

}  // namespace

std::string renderCorpusEntry(const CorpusEntry& e) {
  std::ostringstream os;
  os << "//! " << kMagic << "\n";
  os << "//! name: " << e.name << "\n";
  os << "//! seed: " << e.seed << "\n";
  os << "//! ticks: " << e.ticks << "\n";
  if (!e.origin.empty()) os << "//! origin: " << e.origin << "\n";
  for (const auto& [sym, vals] : e.expected)
    os << "//! expect " << sym << ": " << renderValues(vals) << "\n";
  os << e.source;
  if (!e.source.empty() && e.source.back() != '\n') os << "\n";
  return os.str();
}

bool parseCorpusEntry(const std::string& text, CorpusEntry* out,
                      std::string* error) {
  *out = CorpusEntry{};
  bool sawMagic = false;
  std::istringstream in(text);
  std::string line;
  std::string source;
  while (std::getline(in, line)) {
    if (!startsWith(line, "//!")) {
      source += line;
      source += "\n";
      continue;
    }
    std::string body(trim(line.substr(3)));
    if (body == kMagic) {
      sawMagic = true;
      continue;
    }
    auto colon = body.find(':');
    if (colon == std::string::npos) {
      *error = "malformed header line: " + line;
      return false;
    }
    std::string key(trim(body.substr(0, colon)));
    std::string val(trim(body.substr(colon + 1)));
    if (key == "name") {
      out->name = val;
    } else if (key == "seed") {
      out->seed = std::strtoull(val.c_str(), nullptr, 0);
    } else if (key == "ticks") {
      out->ticks = std::atoi(val.c_str());
    } else if (key == "origin") {
      out->origin = val;
    } else if (startsWith(key, "expect ")) {
      std::string sym(trim(key.substr(7)));
      if (sym.empty()) {
        *error = "expect line names no symbol: " + line;
        return false;
      }
      if (!parseValues(val, &out->expected[sym], error)) return false;
    } else {
      *error = "unknown header key '" + key + "'";
      return false;
    }
  }
  if (!sawMagic) {
    *error = std::string("missing '//! ") + kMagic + "' header";
    return false;
  }
  if (out->name.empty()) {
    *error = "missing '//! name:' header";
    return false;
  }
  if (out->ticks <= 0) {
    *error = "missing or non-positive '//! ticks:' header";
    return false;
  }
  if (out->expected.empty()) {
    *error = "no '//! expect <output>:' lines (nothing pinned)";
    return false;
  }
  out->source = std::move(source);
  return true;
}

bool loadCorpusFile(const std::string& path, CorpusEntry* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parseCorpusEntry(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::vector<std::string> listCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& ent : std::filesystem::directory_iterator(dir, ec)) {
    if (!ent.is_regular_file()) continue;
    if (ent.path().extension() != ".dfl") continue;
    out.push_back(ent.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

CorpusEntry entryFromSource(const std::string& source, const std::string& name,
                            uint64_t seed, int ticks,
                            const std::string& origin) {
  DiagEngine diag;
  auto prog = dfl::parseDfl(source, diag);
  if (!prog)
    throw std::runtime_error("corpus entry '" + name +
                             "' does not parse:\n" + diag.str());
  CorpusEntry e;
  e.name = name;
  e.seed = seed;
  e.ticks = ticks;
  e.origin = origin;
  e.source = source;
  Stimulus stim = makeStimulus(*prog, seed, ticks);
  e.expected = goldenTraces(*prog, stim);
  if (e.expected.empty())
    throw std::runtime_error("corpus entry '" + name +
                             "' has no scalar outputs to pin");
  return e;
}

CorpusEntry entryFromSpec(const ProgSpec& spec, const std::string& name,
                          const std::string& origin) {
  return entryFromSource(spec.render(), name, spec.seed, spec.ticks, origin);
}

ReplayOutcome replayEntry(const CorpusEntry& e,
                          const std::vector<SweepPoint>& sweep,
                          const CrossCheckOpts& opts) {
  ReplayOutcome out;
  DiagEngine diag;
  auto prog = dfl::parseDfl(e.source, diag);
  if (!prog) {
    out.failures.push_back(e.name + ": DFL no longer parses:\n" + diag.str());
    return out;
  }
  Stimulus stim = makeStimulus(*prog, e.seed, e.ticks);

  // 1. Golden pin: the interpreter must still produce the committed traces
  // (catches semantic drift of the golden model itself).
  auto traces = goldenTraces(*prog, stim);
  for (const auto& [sym, want] : e.expected) {
    auto it = traces.find(sym);
    if (it == traces.end()) {
      out.failures.push_back(e.name + ": pinned output '" + sym +
                             "' is not a scalar output of the program");
      continue;
    }
    if (it->second != want)
      out.failures.push_back(e.name + ": golden model drifted on '" + sym +
                             "': got [" + renderValues(it->second) +
                             "], pinned [" + renderValues(want) + "]");
  }
  for (const auto& [sym, vals] : traces) {
    (void)vals;
    if (!e.expected.count(sym))
      out.failures.push_back(e.name + ": output '" + sym +
                             "' has no pinned expect line");
  }

  // 2. Cross-check: compiled + simulated == interpreter on every
  // (config, mode) pair, exactly like the live oracle.
  for (const auto& pt : sweep) {
    for (bool fast : {true, false}) {
      CompileResult res;
      try {
        RecordCompiler rc(pt.cfg, oracleOptions(fast, opts));
        res = rc.compile(*prog);
      } catch (const std::runtime_error&) {
        ++out.unsupported;
        continue;
      }
      ++out.runs;
      Measurement m = runAndCompare(res.prog, *prog, stim);
      if (!m.ok) {
        out.failures.push_back(e.name + ": " + pt.name + " " +
                               (fast ? "fast" : "slow") + ": " + m.error);
        continue;
      }
      if (opts.checkEngines) {
        std::string diff = compareSimEngines(res.prog, stim);
        if (!diff.empty())
          out.failures.push_back(e.name + ": " + pt.name + " " +
                                 (fast ? "fast" : "slow") +
                                 ": simulator engine divergence: " + diff);
      }
    }
  }
  return out;
}

std::string writeCorpusEntry(const CorpusEntry& e, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string base = uniqueArtifactBase(dir + "/" + e.name, ".dfl");
  std::string path = base + ".dfl";
  std::ofstream f(path);
  if (!f) return "";
  f << renderCorpusEntry(e);
  return f ? path : "";
}

}  // namespace record::difftest
