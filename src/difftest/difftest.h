// Differential-testing oracle across the whole pipeline: a seeded DFL
// program generator, a cross-check driver that runs each program through the
// IR golden-model interpreter AND the full codegen pipeline + tdsp simulator
// under a sweep of target configurations and compile modes, and a greedy
// test-case minimizer for any divergence found.
//
// The contract under test: for every program the compiler ACCEPTS, the
// simulated machine must agree bit-for-bit with ir/interp.cpp on every
// output at every tick, on every swept TargetConfig, with the fast path on
// or off. Capability rejections (std::runtime_error from compile()) are
// clean "unsupported" skips, never divergences. Known exclusions from the
// contract are documented in DESIGN.md ("Correctness oracle").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/pipeline.h"
#include "dspstone/harness.h"
#include "ir/expr.h"
#include "target/isa.h"

namespace record::server {
class CompileService;
}

namespace record::difftest {

// ---------------------------------------------------------------------------
// Generated-program spec
// ---------------------------------------------------------------------------
// The generator produces a structured spec rather than raw text so the
// minimizer can mutate it (drop statements, shrink subtrees) and re-render.

struct GExpr;
using GExprPtr = std::shared_ptr<const GExpr>;

/// One node of a generated expression. Reuses record::Op for the operator
/// vocabulary; leaves carry symbol names instead of Symbol pointers so a
/// spec is self-contained (renderable without a symbol table).
struct GExpr {
  Op op = Op::Const;
  int64_t value = 0;   // Const: literal; Ref: delay depth (name@value)
  std::string name;    // Ref / ArrayRef
  std::vector<GExprPtr> kids;

  static GExprPtr constant(int64_t v);
  static GExprPtr ref(std::string name, int delay = 0);
  static GExprPtr arrayRef(std::string name, GExprPtr index);
  static GExprPtr unary(Op op, GExprPtr a);
  static GExprPtr binary(Op op, GExprPtr a, GExprPtr b);
};

/// Render as DFL expression text (fully parenthesized).
std::string renderExpr(const GExpr& e);

struct GDecl {
  enum class Kind { Input, Output, Var } kind = Kind::Var;
  std::string name;
  int arraySize = 0;  // 0 = scalar
  int delay = 0;      // delay-line depth (scalars only)
};

struct GStmt {
  std::string lhs;
  GExprPtr lhsIndex;  // null = scalar assignment
  GExprPtr rhs;
};

/// One top-level item: a single statement, or a `for` loop over [lo, hi].
struct GItem {
  bool isLoop = false;
  std::string ivar;  // loop only
  int lo = 0, hi = 0;
  std::vector<GStmt> stmts;  // loop body, or the single statement
};

struct ProgSpec {
  uint64_t seed = 0;
  std::vector<GDecl> decls;
  std::vector<GItem> items;
  int ticks = 4;

  /// Render as a complete DFL program.
  std::string render() const;
};

/// Deterministic program generator: same seed, same program, on every
/// platform (no std::uniform_int_distribution). Programs exercise
/// expressions (incl. saturating ops, shifts, bitwise, delay lines), loops
/// with array streaming, and dynamically (mask-guarded) indexed accesses.
ProgSpec generateProgram(uint64_t seed);

/// Rebuild a generator spec from a lowered program, so corpus entries
/// (stored as DFL text) can seed the mutator. Returns nullopt for shapes
/// outside the generator grammar (non-unit loop steps, non-fix types,
/// Store patterns). The round trip normalizes formatting; the rebuilt
/// spec renders to a semantically identical program.
std::optional<ProgSpec> specFromProgram(const Program& prog, uint64_t seed,
                                        int ticks);

/// Deterministic structure-preserving mutation: same (base, seed), same
/// result, everywhere. Perturbs constants, swaps operators within their
/// arity family, regenerates statement right-hand sides, and occasionally
/// appends a statement or re-rolls the tick count -- while never touching
/// array-index or shift-amount subtrees (bounds and grammar stay valid)
/// and never growing loop bounds. The result always parses; divergences it
/// finds minimize and dedupe exactly like generated ones.
ProgSpec mutateSpec(const ProgSpec& base, uint64_t seed);

/// Deterministic boundary-biased stimulus: mixes full-range random int16
/// values with overflow-provoking constants (0x7fff, -0x8000, 0x4000, ...),
/// unlike the harness's defaultStimulus which stays safely small.
Stimulus makeStimulus(const Program& prog, uint64_t seed, int ticks);

// ---------------------------------------------------------------------------
// Cross-check oracle
// ---------------------------------------------------------------------------

struct SweepPoint {
  std::string name;
  TargetConfig cfg;
};

/// The default configuration sweep: >= 8 structurally distinct tdsp
/// variants (MAC on/off, dual multiplier x banks, saturation, AR file
/// sizes, hardware loop features).
std::vector<SweepPoint> defaultSweep();

/// Everything needed to reproduce one divergence.
struct Repro {
  uint64_t seed = 0;
  std::string config;      // SweepPoint name
  std::string configDesc;  // TargetConfig::describe()
  bool fastPath = true;
  std::string divergence;  // first divergent observable (tick/symbol/values)
  std::string source;      // DFL text of the (possibly minimized) program
  /// Trace artifact of a re-compile of the diverging (config, mode) pair:
  /// human pass trace + Chrome trace_event JSON. Shows which rewrite
  /// variants, rules, and late-pass firings produced the bad code; written
  /// into the soak driver's divergence dumps.
  std::string traceText;
  std::string traceJson;
  std::string str() const;
};

struct OracleStats {
  int programs = 0;
  int runs = 0;         // (config x mode) pairs actually executed
  int unsupported = 0;  // clean capability rejections, skipped
  int divergences = 0;
};

struct CrossCheckOpts {
  /// Force searchThreads=1 in both compile modes. Callers that are
  /// themselves worker threads (the sharded soak) set this so every
  /// compile stays on its own thread instead of contending for the
  /// process-shared search pool.
  bool sequentialSearch = false;
  /// Route every oracle compile through this compile service instead of a
  /// fresh per-call RecordCompiler. The oracle's fast and slow modes keep
  /// distinct cache keys (the options fingerprint includes the fast-path
  /// flags), so coverage is unchanged; what this buys is a concurrency
  /// stress of the service's cache and single-flight paths with
  /// bit-identity checked on every response. Null = direct compiles.
  server::CompileService* service = nullptr;
  /// Also run every accepted (config x mode) pair on both simulator
  /// engines (decode-once Machine vs. pre-decode ReferenceMachine) and
  /// report any behavioral divergence between them as a Repro. This turns
  /// every oracle run into a differential test of the interpreter rewrite
  /// itself; the cost is one extra (cheap) reference execution per run.
  bool checkEngines = true;
  /// Path to a target description (src/isd/gen.h grammar). When set, every
  /// (config x mode) pair is ALSO compiled with the rule set generated
  /// from this description and compared bit-for-bit against the
  /// hand-written-table compile (listing, encoding, data layout, accept/
  /// reject decision); any mismatch is a divergence. The description is
  /// parsed once and cached; an unreadable or invalid description throws
  /// std::logic_error (harness misconfiguration, not a finding).
  std::string isdPath;
};

/// The oracle's compiler settings for one compile mode: fast-path layers
/// all on or all off. Shared by crossCheck and the corpus replayer.
CodegenOptions oracleOptions(bool fastPath, const CrossCheckOpts& opts = {});

/// Run one spec through every (config x fast-path mode) pair. Returns every
/// divergence found (empty = agreement everywhere). Throws only on
/// generator bugs (spec fails to parse).
std::vector<Repro> crossCheck(const ProgSpec& spec,
                              const std::vector<SweepPoint>& sweep,
                              OracleStats* stats = nullptr,
                              const CrossCheckOpts& opts = {});

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

/// True when the candidate spec still exhibits the behavior of interest
/// (for a real repro: "still diverges at this sweep point").
using StillFailing = std::function<bool(const ProgSpec&)>;

/// Greedy spec minimization: repeatedly drop items/statements, shrink loop
/// bounds and tick counts, and replace expression subtrees with their
/// children or constants, keeping every mutation that preserves the
/// predicate. `maxProbes` bounds the number of predicate evaluations.
ProgSpec minimize(const ProgSpec& spec, const StillFailing& still,
                  int maxProbes = 400);

/// Predicate for minimizing a concrete divergence: re-runs the oracle at
/// one sweep point / compile mode.
StillFailing divergesAt(const SweepPoint& pt, bool fastPath,
                        const CrossCheckOpts& opts = {});

// ---------------------------------------------------------------------------
// Divergence artifacts
// ---------------------------------------------------------------------------

/// Collision-free artifact naming for divergence dumps: returns the first of
/// "<base>", "<base>-2", "<base>-3", ... for which "<candidate><ext>" does
/// not exist on disk, so a soak rerun (or two repros that map to the same
/// seed/config/mode triple) never silently overwrites an earlier dump.
std::string uniqueArtifactBase(const std::string& base,
                               const std::string& ext = ".txt");

}  // namespace record::difftest
