#include "difftest/difftest.h"

#include <utility>

namespace record::difftest {

namespace {

/// All single-step shrinks of an expression tree, smallest-first-ish:
/// replace the whole tree by a constant, by one of its children, or shrink
/// one child in place.
void exprShrinks(const GExprPtr& e, std::vector<GExprPtr>& out) {
  if (e->op != Op::Const || e->value != 0) out.push_back(GExpr::constant(0));
  for (const auto& k : e->kids)
    if (e->op != Op::ArrayRef) out.push_back(k);  // an index is not a value
  for (size_t i = 0; i < e->kids.size(); ++i) {
    std::vector<GExprPtr> kidShrinks;
    exprShrinks(e->kids[i], kidShrinks);
    for (auto& ks : kidShrinks) {
      auto copy = std::make_shared<GExpr>(*e);
      copy->kids[i] = std::move(ks);
      out.push_back(std::move(copy));
    }
  }
}

/// One round of candidate mutations, coarse to fine. Returns candidate
/// specs; the caller keeps the first one that still fails.
std::vector<ProgSpec> mutations(const ProgSpec& spec) {
  std::vector<ProgSpec> out;
  // Drop a whole item.
  if (spec.items.size() > 1) {
    for (size_t i = 0; i < spec.items.size(); ++i) {
      ProgSpec m = spec;
      m.items.erase(m.items.begin() + static_cast<long>(i));
      out.push_back(std::move(m));
    }
  }
  // Drop one statement from a loop body.
  for (size_t i = 0; i < spec.items.size(); ++i) {
    if (!spec.items[i].isLoop || spec.items[i].stmts.size() <= 1) continue;
    for (size_t s = 0; s < spec.items[i].stmts.size(); ++s) {
      ProgSpec m = spec;
      m.items[i].stmts.erase(m.items[i].stmts.begin() +
                             static_cast<long>(s));
      out.push_back(std::move(m));
    }
  }
  // Shrink loop bounds.
  for (size_t i = 0; i < spec.items.size(); ++i) {
    if (!spec.items[i].isLoop || spec.items[i].hi <= spec.items[i].lo)
      continue;
    ProgSpec m = spec;
    m.items[i].hi = m.items[i].lo + (m.items[i].hi - m.items[i].lo) / 2;
    out.push_back(std::move(m));
  }
  // Fewer ticks.
  if (spec.ticks > 1) {
    ProgSpec m = spec;
    m.ticks = spec.ticks / 2 > 0 ? spec.ticks / 2 : 1;
    out.push_back(std::move(m));
  }
  // Shrink right-hand sides (and dynamic store indices).
  for (size_t i = 0; i < spec.items.size(); ++i) {
    for (size_t s = 0; s < spec.items[i].stmts.size(); ++s) {
      std::vector<GExprPtr> cands;
      exprShrinks(spec.items[i].stmts[s].rhs, cands);
      for (auto& c : cands) {
        ProgSpec m = spec;
        m.items[i].stmts[s].rhs = std::move(c);
        out.push_back(std::move(m));
      }
      if (spec.items[i].stmts[s].lhsIndex) {
        std::vector<GExprPtr> icands;
        exprShrinks(spec.items[i].stmts[s].lhsIndex, icands);
        for (auto& c : icands) {
          ProgSpec m = spec;
          m.items[i].stmts[s].lhsIndex = std::move(c);
          out.push_back(std::move(m));
        }
      }
    }
  }
  // Drop declarations nothing references (keeps repros tidy).
  for (size_t d = 0; d < spec.decls.size(); ++d) {
    const std::string& name = spec.decls[d].name;
    bool used = false;
    std::function<void(const GExpr&)> scan = [&](const GExpr& e) {
      if (e.name == name) used = true;
      for (const auto& k : e.kids) scan(*k);
    };
    for (const auto& it : spec.items)
      for (const auto& s : it.stmts) {
        if (s.lhs == name) used = true;
        if (s.lhsIndex) scan(*s.lhsIndex);
        scan(*s.rhs);
      }
    if (used) continue;
    ProgSpec m = spec;
    m.decls.erase(m.decls.begin() + static_cast<long>(d));
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

ProgSpec minimize(const ProgSpec& spec, const StillFailing& still,
                  int maxProbes) {
  ProgSpec cur = spec;
  int probes = 0;
  bool shrunk = true;
  while (shrunk && probes < maxProbes) {
    shrunk = false;
    for (auto& cand : mutations(cur)) {
      if (probes++ >= maxProbes) break;
      if (!still(cand)) continue;
      cur = std::move(cand);
      shrunk = true;
      break;  // restart from the smaller spec
    }
  }
  return cur;
}

}  // namespace record::difftest
