// Committed regression corpus for the differential-testing oracle: every
// miscompile the soak ever minimized (plus hand-pinned shapes for
// historical bugs) lives on as a permanent test case under tests/corpus/.
//
// An entry is a single self-contained .dfl file. Metadata rides in `//!`
// header comments — the DFL lexer skips comments, so the file parses (and
// compiles with recordc) as-is:
//
//   //! difftest-corpus v1
//   //! name: literal-width
//   //! seed: 3            <- stimulus seed (makeStimulus), not generator
//   //! ticks: 4
//   //! origin: pinned by hand: 16-bit literal semantics (PR 2)
//   //! expect o0: 128 128 128 128
//   program literal_width;
//   ...
//
// The `expect` lines pin the golden-model interpreter's per-tick output
// traces, so replay catches not only a pipeline regression (sim vs interp
// divergence) but also silent drift of the golden model itself.
//
// Replay (tests/corpus_test.cpp) runs every entry:
//   1. interpreter traces == the pinned `expect` lines, and
//   2. compiled + simulated == interpreter on every sweep TargetConfig
//      x fast/slow compile mode (capability rejections are clean skips,
//      exactly like the live oracle).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "difftest/difftest.h"

namespace record::difftest {

struct CorpusEntry {
  std::string name;    // file stem; [a-z0-9-]+
  uint64_t seed = 0;   // stimulus seed (program + stimulus reproduce from it)
  int ticks = 1;
  std::string origin;  // free text: where the entry came from
  std::string source;  // DFL program text (header lines stripped)
  /// Pinned golden-model traces: output symbol -> one value per tick.
  std::map<std::string, std::vector<int64_t>> expected;
};

/// Render an entry as its on-disk .dfl form (headers + source).
std::string renderCorpusEntry(const CorpusEntry& e);

/// Parse the on-disk form. Returns false with a message on malformed
/// headers; the DFL body itself is validated at replay time.
bool parseCorpusEntry(const std::string& text, CorpusEntry* out,
                      std::string* error);

/// Load one entry from a file (false + message on I/O or parse failure).
bool loadCorpusFile(const std::string& path, CorpusEntry* out,
                    std::string* error);

/// Sorted list of corpus files (*.dfl) in a directory; empty when the
/// directory is missing or holds none.
std::vector<std::string> listCorpusFiles(const std::string& dir);

/// Build an entry from a (typically minimized) spec: renders the program,
/// runs the golden interpreter on the spec's seed/ticks stimulus, and pins
/// the resulting output traces. Throws std::runtime_error if the spec
/// does not parse (generator bug).
CorpusEntry entryFromSpec(const ProgSpec& spec, const std::string& name,
                          const std::string& origin);

/// Like entryFromSpec but for hand-written DFL text.
CorpusEntry entryFromSource(const std::string& source, const std::string& name,
                            uint64_t seed, int ticks,
                            const std::string& origin);

struct ReplayOutcome {
  int runs = 0;         // (config x mode) pairs executed
  int unsupported = 0;  // capability rejections (clean skips)
  std::vector<std::string> failures;  // empty = entry passes
  bool ok() const { return failures.empty(); }
};

/// Replay one entry: golden-trace pin + full sweep cross-check.
ReplayOutcome replayEntry(const CorpusEntry& e,
                          const std::vector<SweepPoint>& sweep,
                          const CrossCheckOpts& opts = {});

/// Write an entry to dir/<name>.dfl, suffixing -2, -3, ... on collision
/// (same uniqueArtifactBase discipline as divergence dumps). Returns the
/// path written, or "" on I/O failure.
std::string writeCorpusEntry(const CorpusEntry& e, const std::string& dir);

}  // namespace record::difftest
