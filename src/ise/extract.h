// Instruction-set extraction (ISE) from RT-level netlists -- §4.3.2 and
// Fig. 3 of the paper (Leupers/Marwedel, Euro-DAC'94):
//
//   "For each memory or register input, ISE traverses the netlist from that
//    input to memory or register outputs (opposite to the direction of the
//    data-flow). For each traversal, it collects the transformations that
//    are applied to the data (e.g. add operations) and also the control
//    requirements (e.g. set ALU input to '0' to perform an add). Control
//    requirements have to be met by proper conditions for instruction bits,
//    which can be found by justification. The net effect of ISE is to
//    generate, for each register or memory, a list of assignable expressions
//    and the corresponding instruction bit settings."
//
// The traversal enumerates every mux/ALU-op choice, justifying each choice
// onto instruction fields and pruning contradictory settings. Every
// extracted pattern is a register transfer `dest := expr` plus the
// instruction-bit settings that realize it (and de-assert all other write
// enables, so the transfer has no side effects).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/model.h"

namespace record::ise {

/// Expression tree over netlist storages/fields.
struct IseExpr {
  enum class Kind : uint8_t { StorageRead, Field, Const, Op };

  Kind kind = Kind::Const;
  std::string storage;   // StorageRead: storage name
  std::string addrField; // StorageRead of a memory: read-address field
  std::string field;     // Field: immediate field name
  int64_t cval = 0;      // Const
  nl::AluOp op = nl::AluOp::Add;  // Op (Mult encoded as opName "mul")
  bool isMult = false;   // Op: multiplier instead of ALU
  std::vector<IseExpr> kids;

  std::string str() const;
};

/// One instruction-bit requirement: field == value.
struct BitSetting {
  std::string field;
  int64_t value = 0;

  bool operator<(const BitSetting& o) const {
    return field < o.field || (field == o.field && value < o.value);
  }
  bool operator==(const BitSetting& o) const = default;
};

/// An extracted register transfer.
struct IsePattern {
  std::string destStorage;
  std::string destAddrField;  // memory destinations: write-address field
  IseExpr expr;
  std::vector<BitSetting> bits;  // sorted, conflict-free

  /// Fig. 3 style rendering:
  ///   acc := add(acc, mem[maddr])   bits: accwe=1 aluop=1 asel=0 ...
  std::string str() const;

  /// Assemble an instruction word realizing this pattern (fields not
  /// mentioned in `bits` are zero).
  uint64_t encode(const nl::Netlist& nl) const;
};

struct IseOptions {
  int maxDepth = 6;         // traversal depth through combinational units
  int maxPatterns = 4096;   // safety cap
};

/// Run extraction over every writable storage of the netlist.
std::vector<IsePattern> extractInstructionSet(const nl::Netlist& nl,
                                              const IseOptions& opts = {});

}  // namespace record::ise
