#include "ise/extract.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace record::ise {

namespace {

using nl::Netlist;
using nl::Storage;
using nl::Unit;

/// A partial traversal result: expression + accumulated bit settings.
struct Trace {
  IseExpr expr;
  std::vector<BitSetting> bits;
};

/// Merge `add` into `bits`; false on contradiction.
bool mergeBits(std::vector<BitSetting>& bits,
               const std::vector<BitSetting>& add) {
  for (const auto& b : add) {
    bool found = false;
    for (const auto& have : bits) {
      if (have.field == b.field) {
        if (have.value != b.value) return false;
        found = true;
        break;
      }
    }
    if (!found) bits.push_back(b);
  }
  return true;
}

bool setBit(std::vector<BitSetting>& bits, const std::string& field,
            int64_t value) {
  return mergeBits(bits, {{field, value}});
}

class Extractor {
 public:
  Extractor(const Netlist& nl, const IseOptions& opts)
      : nl_(nl), opts_(opts) {}

  std::vector<IsePattern> run() {
    std::vector<IsePattern> out;
    for (const auto& s : nl_.storages) {
      if (s.inSrc.empty() || s.weSrc.empty()) continue;
      for (auto& t : traceSrc(s.inSrc, 0)) {
        // The destination's write enable must be asserted...
        if (!setBit(t.bits, s.weSrc, 1)) continue;
        // ...and every other storage's write must be suppressed so the
        // transfer is side-effect free.
        bool ok = true;
        for (const auto& other : nl_.storages) {
          if (other.name == s.name || other.weSrc.empty()) continue;
          if (!setBit(t.bits, other.weSrc, 0)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        IsePattern p;
        p.destStorage = s.name;
        p.destAddrField = s.waddrField;
        p.expr = std::move(t.expr);
        std::sort(t.bits.begin(), t.bits.end());
        p.bits = std::move(t.bits);
        out.push_back(std::move(p));
        if (static_cast<int>(out.size()) >= opts_.maxPatterns) return dedup(out);
      }
    }
    return dedup(out);
  }

 private:
  std::vector<IsePattern> dedup(std::vector<IsePattern>& in) {
    std::vector<IsePattern> out;
    std::set<std::string> seen;
    for (auto& p : in) {
      std::string key = p.str();
      if (seen.insert(key).second) out.push_back(std::move(p));
    }
    return out;
  }

  std::vector<Trace> traceSrc(const std::string& src, int depth) {
    if (depth > opts_.maxDepth) return {};
    std::string name, port;
    if (!nl::splitPortRef(src, name, port)) {
      // Bare field used as data.
      Trace t;
      t.expr.kind = IseExpr::Kind::Field;
      t.expr.field = src;
      return {t};
    }
    if (const Storage* s = nl_.findStorage(name)) {
      Trace t;
      t.expr.kind = IseExpr::Kind::StorageRead;
      t.expr.storage = s->name;
      t.expr.addrField = s->raddrField;
      return {t};
    }
    const Unit* u = nl_.findUnit(name);
    if (!u) return {};
    switch (u->kind) {
      case Unit::Kind::Const: {
        Trace t;
        t.expr.kind = IseExpr::Kind::Const;
        t.expr.cval = u->constValue;
        return {t};
      }
      case Unit::Kind::SignExt: {
        Trace t;
        t.expr.kind = IseExpr::Kind::Field;
        t.expr.field = u->ctlField;
        return {t};
      }
      case Unit::Kind::Mux2: {
        std::vector<Trace> out;
        for (int sel = 0; sel < 2; ++sel) {
          for (auto& t : traceSrc(sel == 0 ? u->in0 : u->in1, depth + 1)) {
            if (!setBit(t.bits, u->ctlField, sel)) continue;
            out.push_back(std::move(t));
          }
        }
        return out;
      }
      case Unit::Kind::Alu: {
        std::vector<Trace> out;
        auto lhs = traceSrc(u->in0, depth + 1);
        auto rhs = traceSrc(u->in1, depth + 1);
        for (int op = 0; op <= 3; ++op) {
          auto aluOp = static_cast<nl::AluOp>(op);
          if (aluOp == nl::AluOp::PassB) {
            for (const auto& r : rhs) {
              Trace t = r;
              if (!setBit(t.bits, u->ctlField, op)) continue;
              out.push_back(std::move(t));
            }
            continue;
          }
          for (const auto& l : lhs) {
            for (const auto& r : rhs) {
              Trace t;
              t.expr.kind = IseExpr::Kind::Op;
              t.expr.op = aluOp;
              t.expr.kids = {l.expr, r.expr};
              t.bits = l.bits;
              if (!mergeBits(t.bits, r.bits)) continue;
              if (!setBit(t.bits, u->ctlField, op)) continue;
              out.push_back(std::move(t));
            }
          }
        }
        return out;
      }
      case Unit::Kind::Mult: {
        std::vector<Trace> out;
        for (const auto& l : traceSrc(u->in0, depth + 1)) {
          for (const auto& r : traceSrc(u->in1, depth + 1)) {
            Trace t;
            t.expr.kind = IseExpr::Kind::Op;
            t.expr.isMult = true;
            t.expr.kids = {l.expr, r.expr};
            t.bits = l.bits;
            if (!mergeBits(t.bits, r.bits)) continue;
            out.push_back(std::move(t));
          }
        }
        return out;
      }
    }
    return {};
  }

  const Netlist& nl_;
  const IseOptions& opts_;
};

}  // namespace

std::string IseExpr::str() const {
  switch (kind) {
    case Kind::StorageRead:
      return addrField.empty() ? storage
                               : storage + "[" + addrField + "]";
    case Kind::Field:
      return "#" + field;
    case Kind::Const:
      return std::to_string(cval);
    case Kind::Op: {
      std::string name = isMult ? "mul" : nl::aluOpName(op);
      std::string s = name + "(";
      for (size_t i = 0; i < kids.size(); ++i) {
        if (i) s += ", ";
        s += kids[i].str();
      }
      return s + ")";
    }
  }
  return "?";
}

std::string IsePattern::str() const {
  std::ostringstream os;
  os << destStorage;
  if (!destAddrField.empty()) os << "[" << destAddrField << "]";
  os << " := " << expr.str() << "   bits:";
  for (const auto& b : bits) os << " " << b.field << "=" << b.value;
  return os.str();
}

uint64_t IsePattern::encode(const nl::Netlist& nl) const {
  uint64_t word = 0;
  for (const auto& b : bits) {
    const nl::Field* f = nl.findField(b.field);
    if (!f) continue;
    uint64_t mask = f->width >= 64 ? ~0ull : ((1ull << f->width) - 1);
    word |= (static_cast<uint64_t>(b.value) & mask) << f->lsb;
  }
  return word;
}

std::vector<IsePattern> extractInstructionSet(const nl::Netlist& nl,
                                              const IseOptions& opts) {
  return Extractor(nl, opts).run();
}

}  // namespace record::ise
