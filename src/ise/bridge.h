// ISE -> compiler bridge: turns extracted register-transfer patterns into a
// working code generator for the netlist itself. This closes the loop the
// paper highlights ("closes the gap which so far existed between electronic
// CAD and compiler generation"): a processor described only as an RT netlist
// gets a compiler whose instructions are netlist microinstruction words,
// executed on the RTL simulator.
//
// The generated compiler targets single-accumulator netlists (one register
// fed by the ALU, one addressable memory) and straight-line programs over
// +/-/& and constants -- the class of machine the extraction demo builds.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "ise/extract.h"
#include "netlist/model.h"

namespace record::ise {

/// Canonical capability classes recognized among extracted patterns.
enum class GenRuleKind : uint8_t {
  LoadMem,   // acc := mem[#]
  LoadImm,   // acc := #imm
  AddMem,    // acc := acc + mem[#]
  SubMem,    // acc := acc - mem[#]
  AndMem,    // acc := acc & mem[#]
  AddImm,    // acc := acc + #imm
  SubImm,    // acc := acc - #imm
  AndImm,    // acc := acc & #imm
  StoreAcc,  // mem[#] := acc
};
const char* genRuleKindName(GenRuleKind k);

struct GenRule {
  GenRuleKind kind;
  uint64_t baseWord = 0;       // instruction bits from the pattern
  std::string operandField;    // field carrying the address / immediate
  IsePattern source;           // provenance (for listings)
};

struct GenProgram {
  std::vector<uint64_t> words;
  std::vector<std::string> listing;  // one line per word
  std::map<std::string, int> varAddr;
};

class GeneratedCompiler {
 public:
  /// Classify extracted patterns into usable rules. `accStorage` and
  /// `memStorage` name the accumulator register and the data memory.
  GeneratedCompiler(const nl::Netlist& nl, std::vector<IsePattern> patterns,
                    std::string accStorage = "acc",
                    std::string memStorage = "mem");

  /// Minimum viability: load + store + at least one binary op.
  bool usable() const;
  /// Capability report (which rule kinds were derived, from which pattern).
  std::string describe() const;
  const std::vector<GenRule>& rules() const { return rules_; }

  /// Compile a straight-line scalar program (Add/Sub/Const/Ref only; loops
  /// may be present and are fully unrolled). Returns nullopt with `error`
  /// set when the program needs a capability the netlist lacks.
  std::optional<GenProgram> compile(const Program& prog,
                                    std::string* error = nullptr) const;

 private:
  const GenRule* find(GenRuleKind k) const;
  uint64_t encodeWith(const GenRule& r, int64_t operand) const;

  const nl::Netlist& nl_;
  std::string acc_, mem_;
  std::vector<GenRule> rules_;
};

/// Execute a generated program on the RTL simulator: one word per cycle.
/// Inputs are preloaded into `mem` at the program's variable addresses.
std::map<std::string, int64_t> runGenerated(
    const nl::Netlist& nl, const GenProgram& gp,
    const std::map<std::string, int64_t>& inputs,
    const std::vector<std::string>& outputs);

}  // namespace record::ise
