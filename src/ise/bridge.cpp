#include "ise/bridge.h"

#include <functional>
#include <sstream>

#include "netlist/rtlsim.h"
#include "support/strings.h"

namespace record::ise {

namespace {

/// Structural classification of an extracted expression against the
/// accumulator conventions. Neutral elements are simplified on the fly
/// (add(0, x) == x), which is how "load" emerges from an ALU with a zero
/// operand mux.
struct Shape {
  enum class Leaf : uint8_t { None, Acc, Mem, Imm, Zero };
  Leaf a = Leaf::None, b = Leaf::None;
  nl::AluOp op = nl::AluOp::PassB;
  bool isOp = false;
  std::string operandField;  // mem raddr or imm field
};

Shape::Leaf classifyLeaf(const IseExpr& e, const std::string& acc,
                         const std::string& mem, std::string* field) {
  switch (e.kind) {
    case IseExpr::Kind::StorageRead:
      if (e.storage == acc) return Shape::Leaf::Acc;
      if (e.storage == mem) {
        *field = e.addrField;
        return Shape::Leaf::Mem;
      }
      return Shape::Leaf::None;
    case IseExpr::Kind::Field:
      *field = e.field;
      return Shape::Leaf::Imm;
    case IseExpr::Kind::Const:
      return e.cval == 0 ? Shape::Leaf::Zero : Shape::Leaf::None;
    case IseExpr::Kind::Op:
      return Shape::Leaf::None;
  }
  return Shape::Leaf::None;
}

}  // namespace

const char* genRuleKindName(GenRuleKind k) {
  switch (k) {
    case GenRuleKind::LoadMem: return "acc := mem[#]";
    case GenRuleKind::LoadImm: return "acc := #imm";
    case GenRuleKind::AddMem: return "acc := acc + mem[#]";
    case GenRuleKind::SubMem: return "acc := acc - mem[#]";
    case GenRuleKind::AndMem: return "acc := acc & mem[#]";
    case GenRuleKind::AddImm: return "acc := acc + #imm";
    case GenRuleKind::SubImm: return "acc := acc - #imm";
    case GenRuleKind::AndImm: return "acc := acc & #imm";
    case GenRuleKind::StoreAcc: return "mem[#] := acc";
  }
  return "?";
}

GeneratedCompiler::GeneratedCompiler(const nl::Netlist& nl,
                                     std::vector<IsePattern> patterns,
                                     std::string accStorage,
                                     std::string memStorage)
    : nl_(nl), acc_(std::move(accStorage)), mem_(std::move(memStorage)) {
  auto add = [&](GenRuleKind kind, const IsePattern& p,
                 const std::string& field) {
    // Keep the first (typically cheapest / least-constrained) pattern.
    for (const auto& r : rules_)
      if (r.kind == kind) return;
    GenRule r;
    r.kind = kind;
    r.baseWord = p.encode(nl_);
    r.operandField = field;
    r.source = p;
    rules_.push_back(std::move(r));
  };

  for (const auto& p : patterns) {
    std::string fieldA, fieldB;
    if (p.destStorage == mem_) {
      // Store: mem[waddr] := acc (possibly through pass/add-zero).
      const IseExpr* e = &p.expr;
      // Unwrap add(zero, acc) / pass chains encoded as ops with Zero.
      if (e->kind == IseExpr::Kind::Op && !e->isMult &&
          e->op == nl::AluOp::Add && e->kids.size() == 2) {
        std::string f;
        if (classifyLeaf(e->kids[0], acc_, mem_, &f) == Shape::Leaf::Zero)
          e = &e->kids[1];
        else if (classifyLeaf(e->kids[1], acc_, mem_, &f) ==
                 Shape::Leaf::Zero)
          e = &e->kids[0];
      }
      std::string f;
      if (classifyLeaf(*e, acc_, mem_, &f) == Shape::Leaf::Acc)
        add(GenRuleKind::StoreAcc, p, p.destAddrField);
      continue;
    }
    if (p.destStorage != acc_) continue;

    // Accumulator destination.
    const IseExpr& e = p.expr;
    std::string f;
    Shape::Leaf leaf = classifyLeaf(e, acc_, mem_, &f);
    if (leaf == Shape::Leaf::Mem) {
      add(GenRuleKind::LoadMem, p, f);
      continue;
    }
    if (leaf == Shape::Leaf::Imm) {
      add(GenRuleKind::LoadImm, p, f);
      continue;
    }
    if (e.kind != IseExpr::Kind::Op || e.isMult || e.kids.size() != 2)
      continue;
    Shape::Leaf a = classifyLeaf(e.kids[0], acc_, mem_, &fieldA);
    Shape::Leaf b = classifyLeaf(e.kids[1], acc_, mem_, &fieldB);
    // Loads via add(0, x).
    if (e.op == nl::AluOp::Add && a == Shape::Leaf::Zero) {
      if (b == Shape::Leaf::Mem) add(GenRuleKind::LoadMem, p, fieldB);
      if (b == Shape::Leaf::Imm) add(GenRuleKind::LoadImm, p, fieldB);
      continue;
    }
    if (a != Shape::Leaf::Acc) continue;
    if (b == Shape::Leaf::Mem) {
      if (e.op == nl::AluOp::Add) add(GenRuleKind::AddMem, p, fieldB);
      if (e.op == nl::AluOp::Sub) add(GenRuleKind::SubMem, p, fieldB);
      if (e.op == nl::AluOp::And) add(GenRuleKind::AndMem, p, fieldB);
    } else if (b == Shape::Leaf::Imm) {
      if (e.op == nl::AluOp::Add) add(GenRuleKind::AddImm, p, fieldB);
      if (e.op == nl::AluOp::Sub) add(GenRuleKind::SubImm, p, fieldB);
      if (e.op == nl::AluOp::And) add(GenRuleKind::AndImm, p, fieldB);
    }
  }
}

bool GeneratedCompiler::usable() const {
  return find(GenRuleKind::LoadMem) && find(GenRuleKind::StoreAcc) &&
         (find(GenRuleKind::AddMem) || find(GenRuleKind::AddImm));
}

std::string GeneratedCompiler::describe() const {
  std::ostringstream os;
  os << "generated compiler for netlist '" << nl_.name << "' ("
     << rules_.size() << " rules):\n";
  for (const auto& r : rules_) {
    os << "  " << padRight(genRuleKindName(r.kind), 22) << " from  "
       << r.source.str() << "\n";
  }
  return os.str();
}

const GenRule* GeneratedCompiler::find(GenRuleKind k) const {
  for (const auto& r : rules_)
    if (r.kind == k) return &r;
  return nullptr;
}

uint64_t GeneratedCompiler::encodeWith(const GenRule& r,
                                       int64_t operand) const {
  uint64_t word = r.baseWord;
  const nl::Field* f = nl_.findField(r.operandField);
  if (f) {
    uint64_t mask = f->width >= 64 ? ~0ull : ((1ull << f->width) - 1);
    word |= (static_cast<uint64_t>(operand) & mask) << f->lsb;
  }
  return word;
}

std::optional<GenProgram> GeneratedCompiler::compile(
    const Program& prog, std::string* error) const {
  auto fail = [&](const std::string& msg) -> std::optional<GenProgram> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!usable()) return fail("netlist lacks load/store/add capabilities");

  GenProgram gp;
  int nextAddr = 0;
  auto addrOf = [&](const Symbol* s) {
    auto it = gp.varAddr.find(s->name);
    if (it != gp.varAddr.end()) return it->second;
    int a = nextAddr;
    nextAddr += std::max(1, s->storageWords());
    gp.varAddr[s->name] = a;
    return a;
  };
  // Register every program symbol up front so spill temps start above them.
  for (const Symbol* s : prog.storageSymbols()) addrOf(s);
  const int tempBase = nextAddr;

  const nl::Field* immField = nullptr;
  if (const GenRule* li = find(GenRuleKind::LoadImm))
    immField = nl_.findField(li->operandField);
  auto immFits = [&](int64_t v) {
    if (!immField) return false;
    // Immediates are sign-extended from the field width.
    int64_t lo = -(1LL << (immField->width - 1));
    int64_t hi = (1LL << (immField->width - 1)) - 1;
    return v >= lo && v <= hi;
  };

  std::string err;
  auto emit = [&](const GenRule* r, int64_t operand,
                  const std::string& note) {
    gp.words.push_back(encodeWith(*r, operand));
    gp.listing.push_back(formatv("%-22s %-6lld ; %s",
                                 genRuleKindName(r->kind),
                                 static_cast<long long>(operand),
                                 note.c_str()));
  };

  // Recursive accumulator evaluation.
  int tempCounter = 0;
  std::function<bool(const ExprPtr&)> evalToAcc;
  std::function<std::optional<int>(const ExprPtr&)> evalToTemp =
      [&](const ExprPtr& e) -> std::optional<int> {
    if (!evalToAcc(e)) return std::nullopt;
    int t = tempBase + tempCounter++;
    emit(find(GenRuleKind::StoreAcc), t, "spill");
    return t;
  };
  auto binRule = [&](Op op, bool mem) -> const GenRule* {
    switch (op) {
      case Op::Add:
        return find(mem ? GenRuleKind::AddMem : GenRuleKind::AddImm);
      case Op::Sub:
        return find(mem ? GenRuleKind::SubMem : GenRuleKind::SubImm);
      default:
        return nullptr;
    }
  };
  evalToAcc = [&](const ExprPtr& e) -> bool {
    switch (e->op) {
      case Op::Const: {
        if (immFits(e->value)) {
          emit(find(GenRuleKind::LoadImm), e->value, "constant");
          return true;
        }
        err = "constant " + std::to_string(e->value) + " exceeds imm field";
        return false;
      }
      case Op::Ref: {
        if (e->sym->kind == SymKind::Const)
          return evalToAcc(Expr::constant(e->sym->constValue));
        emit(find(GenRuleKind::LoadMem), addrOf(e->sym), e->sym->name);
        return true;
      }
      case Op::Add:
      case Op::Sub: {
        const ExprPtr& a = e->kids[0];
        const ExprPtr& b = e->kids[1];
        // Simple RHS: leaf operand.
        if (b->op == Op::Const && immFits(b->value) &&
            binRule(e->op, false)) {
          if (!evalToAcc(a)) return false;
          emit(binRule(e->op, false), b->value, "imm operand");
          return true;
        }
        if (b->op == Op::Ref && b->sym->kind != SymKind::Const &&
            binRule(e->op, true)) {
          if (!evalToAcc(a)) return false;
          emit(binRule(e->op, true), addrOf(b->sym), b->sym->name);
          return true;
        }
        // Complex RHS: through a temp.
        if (!binRule(e->op, true)) {
          err = "netlist has no memory-operand rule for op";
          return false;
        }
        auto t = evalToTemp(b);
        if (!t) return false;
        if (!evalToAcc(a)) return false;
        emit(binRule(e->op, true), *t, "temp operand");
        return true;
      }
      default:
        err = std::string("operator '") + opName(e->op) +
              "' not supported by the generated compiler";
        return false;
    }
  };

  for (const auto& st : flattenStmts(prog.body)) {
    if (st.lhsIndex) return fail("array stores not supported");
    if (!evalToAcc(st.rhs)) return fail(err);
    emit(find(GenRuleKind::StoreAcc), addrOf(st.lhs), st.lhs->name);
  }
  return gp;
}

std::map<std::string, int64_t> runGenerated(
    const nl::Netlist& nl, const GenProgram& gp,
    const std::map<std::string, int64_t>& inputs,
    const std::vector<std::string>& outputs) {
  nl::RtlSim sim(nl);
  for (const auto& [name, v] : inputs) {
    auto it = gp.varAddr.find(name);
    if (it != gp.varAddr.end()) sim.setMem("mem", it->second, v);
  }
  for (uint64_t w : gp.words) sim.step(w);
  std::map<std::string, int64_t> out;
  for (const auto& name : outputs) {
    auto it = gp.varAddr.find(name);
    if (it != gp.varAddr.end()) out[name] = sim.mem("mem", it->second);
  }
  return out;
}

}  // namespace record::ise
