#include "dspstone/kernels.h"

#include <stdexcept>

namespace record {

namespace {

std::vector<Kernel> buildKernels() {
  std::vector<Kernel> ks;

  // -------------------------------------------------------------- 1
  ks.push_back({"real_update",
                R"(
program real_update;
input a : fix;
input b : fix;
input c : fix;
output d : fix;
begin
  d := a*b + c;
end
)",
                R"(
.sym a 1
.sym b 1
.sym c 1
.sym d 1
    LT a
    MPY b
    PAC
    ADD c
    SACL d
    HALT
)",
                4});

  // -------------------------------------------------------------- 2
  ks.push_back({"complex_multiply",
                R"(
program complex_multiply;
input ar : fix;
input ai : fix;
input br : fix;
input bi : fix;
output cr : fix;
output ci : fix;
begin
  cr := ar*br - ai*bi;
  ci := ar*bi + ai*br;
end
)",
                R"(
.sym ar 1
.sym ai 1
.sym br 1
.sym bi 1
.sym cr 1
.sym ci 1
    LT ar
    MPY br
    LTP ai      ; acc = ar*br, T = ai
    MPY bi
    SPAC
    SACL cr
    LT ar
    MPY bi
    LTP ai
    MPY br
    APAC
    SACL ci
    HALT
)",
                4});

  // -------------------------------------------------------------- 3
  ks.push_back({"complex_update",
                R"(
program complex_update;
input ar : fix;
input ai : fix;
input br : fix;
input bi : fix;
input cr : fix;
input ci : fix;
output dr : fix;
output di : fix;
begin
  dr := cr + ar*br - ai*bi;
  di := ci + ar*bi + ai*br;
end
)",
                R"(
.sym ar 1
.sym ai 1
.sym br 1
.sym bi 1
.sym cr 1
.sym ci 1
.sym dr 1
.sym di 1
    LAC cr
    LT ar
    MPY br
    LTA ai      ; acc += ar*br, T = ai
    MPY bi
    SPAC
    SACL dr
    LAC ci
    LT ar
    MPY bi
    LTA ai
    MPY br
    APAC
    SACL di
    HALT
)",
                4});

  // -------------------------------------------------------------- 4
  ks.push_back({"n_real_updates",
                R"(
program n_real_updates;
const N = 16;
input a[N] : fix;
input b[N] : fix;
input c[N] : fix;
output d[N] : fix;
begin
  for i := 0 to N-1 do
    d[i] := a[i]*b[i] + c[i];
  endfor
end
)",
                R"(
.sym a 16
.sym b 16
.sym c 16
.sym d 16
    LARK AR0, #0
    LARK AR1, #16
    LARK AR2, #32
    LARK AR3, #48
    LARK AR4, #15
loop: LT *AR0+
    MPY *AR1+
    PAC
    ADD *AR2+
    SACL *AR3+
    BANZ AR4, loop
    HALT
)",
                2});

  // -------------------------------------------------------------- 5
  ks.push_back({"n_complex_updates",
                R"(
program n_complex_updates;
const N = 16;
input ar[N] : fix;
input ai[N] : fix;
input br[N] : fix;
input bi[N] : fix;
input cr[N] : fix;
input ci[N] : fix;
output dr[N] : fix;
output di[N] : fix;
begin
  for i := 0 to N-1 do
    dr[i] := cr[i] + ar[i]*br[i] - ai[i]*bi[i];
    di[i] := ci[i] + ar[i]*bi[i] + ai[i]*br[i];
  endfor
end
)",
                R"(
.sym ar 16
.sym ai 16
.sym br 16
.sym bi 16
.sym cr 16
.sym ci 16
.sym dr 16
.sym di 16
.sym cnt 1
    LARK AR0, #0     ; ar
    LARK AR1, #16    ; ai
    LARK AR2, #32    ; br
    LARK AR3, #48    ; bi
    LARK AR4, #64    ; cr
    LARK AR5, #80    ; ci
    LARK AR6, #96    ; dr
    LARK AR7, #112   ; di
    LACK #15
    SACL cnt
loop: LAC *AR4+      ; cr[i]
    LT *AR0          ; ar[i]
    MPY *AR2         ; br[i]
    LTA *AR1         ; acc += ar*br, T = ai[i]
    MPY *AR3         ; bi[i]
    SPAC
    SACL *AR6+       ; dr[i]
    LAC *AR5+        ; ci[i]
    LT *AR0+         ; ar[i] (advance)
    MPY *AR3+        ; bi[i] (advance)
    LTA *AR1+        ; acc += ar*bi, T = ai[i] (advance)
    MPY *AR2+        ; br[i] (advance)
    APAC
    SACL *AR7+       ; di[i]
    LAC cnt
    SUBK #1
    SACL cnt
    BGEZ loop
    HALT
)",
                2});

  // -------------------------------------------------------------- 6
  ks.push_back({"fir",
                R"(
program fir;
const N = 16;
input x0 : fix;
input h[N] : fix;
var x[N] : fix;
output y : fix;
var acc : fix;
begin
  // shift the delay line and insert the new sample
  for i := 0 to N-2 do
    x[N-1-i] := x[N-2-i];
  endfor
  x[0] := x0;
  acc := 0;
  for i := 0 to N-1 do
    acc := acc + h[i]*x[i];
  endfor
  y := acc;
end
)",
                R"(
.sym x0 1
.sym h 16
.sym x 16
.sym y 1
    LARK AR0, #31     ; x + 14
    RPT #14
    DMOV *AR0-        ; shift the delay line
    LAC x0
    SACL x            ; x[0] = new sample
    LARK AR0, #1      ; h
    LARK AR1, #17     ; x
    LARK AR2, #15
    ZAC
    MPYK #0
loop: LTA *AR0+
    MPY *AR1+
    BANZ AR2, loop
    APAC
    SACL y
    HALT
)",
                6});

  // -------------------------------------------------------------- 7
  ks.push_back({"iir_biquad_one_section",
                R"(
program iir_biquad_one_section;
input x : fix;
input a1 : fix;
input a2 : fix;
input b0 : fix;
input b1 : fix;
input b2 : fix;
var w : fix;
var w1 : fix;
var w2 : fix;
output y : fix;
begin
  w := x - a1*w1 - a2*w2;
  y := b0*w + b1*w1 + b2*w2;
  w2 := w1;
  w1 := w;
end
)",
                R"(
.sym x 1
.sym a1 1
.sym a2 1
.sym b0 1
.sym b1 1
.sym b2 1
.sym w 1
.sym w1 1
.sym w2 1
.sym y 1
    LAC x
    LT a1
    MPY w1
    SPAC        ; no combined load-T-and-subtract exists, so plain SPAC
    LT a2
    MPY w2
    SPAC
    SACL w
    LT b0
    MPY w
    LTP b1
    MPY w1
    LTA b2
    MPY w2
    APAC
    SACL y
    DMOV w1     ; w2 = w1
    LAC w
    SACL w1
    HALT
)",
                6});

  // -------------------------------------------------------------- 8
  ks.push_back({"iir_biquad_n_sections",
                R"(
program iir_biquad_n_sections;
const NS = 4;
input x : fix;
input a1[NS] : fix;
input a2[NS] : fix;
input b0[NS] : fix;
input b1[NS] : fix;
input b2[NS] : fix;
var w : fix;
var w1[NS] : fix;
var w2[NS] : fix;
var xin : fix;
output y : fix;
begin
  xin := x;
  for s := 0 to NS-1 do
    w := xin - a1[s]*w1[s] - a2[s]*w2[s];
    xin := b0[s]*w + b1[s]*w1[s] + b2[s]*w2[s];
    w2[s] := w1[s];
    w1[s] := w;
  endfor
  y := xin;
end
)",
                R"(
.sym x 1
.sym a1 4
.sym a2 4
.sym b0 4
.sym b1 4
.sym b2 4
.sym w 1
.sym w1 4
.sym w2 4
.sym xin 1
.sym y 1
    LAC x
    SACL xin
    LARK AR0, #1    ; a1
    LARK AR1, #5    ; a2
    LARK AR2, #9    ; b0
    LARK AR3, #13   ; b1
    LARK AR4, #17   ; b2
    LARK AR5, #22   ; w1
    LARK AR6, #26   ; w2
    LARK AR7, #3
loop: LAC xin
    LT *AR0+        ; a1[s]
    MPY *AR5        ; w1[s]
    SPAC
    LT *AR1+        ; a2[s]
    MPY *AR6        ; w2[s]
    SPAC
    SACL w
    LT *AR2+        ; b0[s]
    MPY w
    LTP *AR3+       ; b1[s]
    MPY *AR5        ; w1[s]
    LTA *AR4+       ; b2[s]
    MPY *AR6        ; w2[s]
    APAC
    SACL xin
    LAC *AR5        ; w1[s]
    SACL *AR6+      ; w2[s] = w1[s]
    LAC w
    SACL *AR5+      ; w1[s] = w
    BANZ AR7, loop
    LAC xin
    SACL y
    HALT
)",
                6});

  // -------------------------------------------------------------- 9
  ks.push_back({"dot_product",
                R"(
program dot_product;
input a[2] : fix;
input b[2] : fix;
output z : fix;
begin
  z := a[0]*b[0] + a[1]*b[1];
end
)",
                R"(
.sym a 2
.sym b 2
.sym z 1
    LT a
    MPY b
    LTP a+1
    MPY b+1
    APAC
    SACL z
    HALT
)",
                2});

  // -------------------------------------------------------------- 10
  ks.push_back({"convolution",
                R"(
program convolution;
const N = 16;
input x[N] : fix;
input h[N] : fix;
output y : fix;
var acc : fix;
begin
  acc := 0;
  for i := 0 to N-1 do
    acc := acc + x[i]*h[N-1-i];
  endfor
  y := acc;
end
)",
                R"(
.sym x 16
.sym h 16
.sym y 1
    LARK AR0, #0     ; x
    LARK AR1, #31    ; h + 15
    LARK AR2, #15
    MPYK #0
loop: LTA *AR0+
    MPY *AR1-
    BANZ AR2, loop
    APAC
    SACL y
    HALT
)",
                2});

  return ks;
}

}  // namespace

const std::vector<Kernel>& dspstoneKernels() {
  static const std::vector<Kernel> ks = buildKernels();
  return ks;
}

const Kernel& kernelByName(const std::string& name) {
  for (const auto& k : dspstoneKernels())
    if (k.name == name) return k;
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace record
