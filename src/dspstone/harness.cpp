#include "dspstone/harness.h"

#include "ir/interp.h"
#include "sim/machine.h"
#include "sim/reference.h"
#include "support/strings.h"

namespace record {

Measurement runAndCompare(const TargetProgram& tp, const Program& prog,
                          const Stimulus& stim, Profile* profile) {
  Measurement m;
  m.sizeWords = tp.sizeWords();

  // Golden model.
  Interp gold(prog);
  for (const auto& [name, vals] : stim.arrays) gold.setArray(name, vals);
  for (const auto& [name, vals] : stim.scalars) gold.setStream(name, vals);

  Machine mach(tp);
  mach.attachProfile(profile);
  // Preload arrays / initial values.
  for (const auto& [name, vals] : stim.arrays) {
    if (tp.addrOf(name) < 0) {
      m.error = "target program lacks symbol '" + name + "'";
      return m;
    }
    for (size_t i = 0; i < vals.size(); ++i)
      mach.writeSymbol(name, static_cast<int>(i), vals[i]);
  }

  for (int t = 0; t < stim.ticks; ++t) {
    // Per-tick scalar inputs.
    for (const auto& [name, vals] : stim.scalars) {
      int64_t v = vals.empty()
                      ? 0
                      : vals[std::min<size_t>(static_cast<size_t>(t),
                                              vals.size() - 1)];
      mach.writeSymbol(name, 0, v);
    }
    gold.run(1);
    auto rr = mach.run();
    if (rr.status != RunStatus::Halted) {
      m.error = formatv("tick %d: simulator did not halt (%s: %s)", t,
                        runStatusName(rr.status), rr.trapReason.c_str());
      return m;
    }
    m.cycles += rr.cycles;
    m.instructions += rr.instructions;
    // Compare output symbols after every tick.
    for (const auto& sym : prog.symbols.all()) {
      if (sym->kind != SymKind::Output) continue;
      int words = sym->isArray() ? sym->arraySize : 1;
      for (int i = 0; i < words; ++i) {
        int64_t want = sym->isArray() ? gold.array(sym->name)[static_cast<size_t>(i)]
                                      : gold.scalar(sym->name);
        int64_t got = mach.readSymbol(sym->name, i);
        if (want != got) {
          m.error = formatv("tick %d: %s[%d] = %lld, golden model says %lld",
                            t, sym->name.c_str(), i,
                            static_cast<long long>(got),
                            static_cast<long long>(want));
          return m;
        }
      }
    }
    // Re-arm for the next tick without clearing data memory.
    mach.reset(false);
  }
  m.ok = true;
  return m;
}

namespace {

/// Compare one engine's post-run state and result against another's,
/// field by field; empty string when identical. Both Machine and
/// ReferenceMachine satisfy the accessor surface.
template <class EngineA, class EngineB>
std::string compareEnginePair(int t, EngineA& a, const char* an,
                              const RunResult& ra, EngineB& b, const char* bn,
                              const RunResult& rb, const TargetProgram& tp) {
  if (ra.status != rb.status)
    return formatv("tick %d: status %s (%s) vs %s (%s)", t,
                   runStatusName(ra.status), an, runStatusName(rb.status), bn);
  if (ra.trapReason != rb.trapReason)
    return formatv("tick %d: trap reason '%s' (%s) vs '%s' (%s)", t,
                   ra.trapReason.c_str(), an, rb.trapReason.c_str(), bn);
  if (ra.cycles != rb.cycles)
    return formatv("tick %d: cycles %lld (%s) vs %lld (%s)", t,
                   static_cast<long long>(ra.cycles), an,
                   static_cast<long long>(rb.cycles), bn);
  if (ra.instructions != rb.instructions)
    return formatv("tick %d: instructions %lld (%s) vs %lld (%s)", t,
                   static_cast<long long>(ra.instructions), an,
                   static_cast<long long>(rb.instructions), bn);
  if (a.acc() != b.acc() || a.treg() != b.treg() || a.preg() != b.preg())
    return formatv(
        "tick %d: ACC/T/P %lld/%lld/%lld (%s) vs %lld/%lld/%lld (%s)", t,
        static_cast<long long>(a.acc()), static_cast<long long>(a.treg()),
        static_cast<long long>(a.preg()), an,
        static_cast<long long>(b.acc()), static_cast<long long>(b.treg()),
        static_cast<long long>(b.preg()), bn);
  for (int i = 0; i < tp.config.numAddrRegs; ++i)
    if (a.ar(i) != b.ar(i))
      return formatv("tick %d: AR%d = %d (%s) vs %d (%s)", t, i, a.ar(i), an,
                     b.ar(i), bn);
  if (a.ovm() != b.ovm() || a.sxm() != b.sxm())
    return formatv("tick %d: OVM/SXM mode bits diverge (%s vs %s)", t, an, bn);
  if (a.pc() != b.pc())
    return formatv("tick %d: PC %d (%s) vs %d (%s)", t, a.pc(), an, b.pc(),
                   bn);
  for (int addr = 0; addr < tp.config.dataWords; ++addr)
    if (a.readData(addr) != b.readData(addr))
      return formatv("tick %d: data[%d] = %lld (%s) vs %lld (%s)", t, addr,
                     static_cast<long long>(a.readData(addr)), an,
                     static_cast<long long>(b.readData(addr)), bn);
  return "";
}

}  // namespace

std::string compareSimEngines(const TargetProgram& tp, const Stimulus& stim) {
  // Three-way: the superblock-translated Machine and the plain decoded
  // Machine are each held against the pre-decode ReferenceMachine (and so,
  // transitively, against each other), tick by tick, over results, all
  // architectural registers, and full data memory. This is the deopt
  // contract's enforcement point: translation on must be bit-identical to
  // translation off.
  Machine tra(tp);
  tra.setTranslate(true);
  Machine dec(tp);
  dec.setTranslate(false);
  ReferenceMachine ref(tp);

  for (const auto& [name, vals] : stim.arrays) {
    if (tp.addrOf(name) < 0)
      return "target program lacks symbol '" + name + "'";
    for (size_t i = 0; i < vals.size(); ++i) {
      tra.writeSymbol(name, static_cast<int>(i), vals[i]);
      dec.writeSymbol(name, static_cast<int>(i), vals[i]);
      ref.writeSymbol(name, static_cast<int>(i), vals[i]);
    }
  }

  for (int t = 0; t < stim.ticks; ++t) {
    for (const auto& [name, vals] : stim.scalars) {
      int64_t v = vals.empty()
                      ? 0
                      : vals[std::min<size_t>(static_cast<size_t>(t),
                                              vals.size() - 1)];
      tra.writeSymbol(name, 0, v);
      dec.writeSymbol(name, 0, v);
      ref.writeSymbol(name, 0, v);
    }
    auto rt = tra.run();
    auto rd = dec.run();
    auto rr = ref.run();
    std::string diff =
        compareEnginePair(t, tra, "translated", rt, ref, "reference", rr, tp);
    if (diff.empty())
      diff = compareEnginePair(t, dec, "decoded", rd, ref, "reference", rr, tp);
    if (!diff.empty()) return diff;
    // A trap or budget exit is terminal and already proven identical;
    // further ticks would just replay it from a stale PC.
    if (rd.status != RunStatus::Halted) break;
    tra.reset(false);
    dec.reset(false);
    ref.reset(false);
  }
  return "";
}

Stimulus defaultStimulus(const Program& prog, uint32_t seed, int ticks) {
  Stimulus stim;
  stim.ticks = ticks;
  uint32_t state = seed * 2654435761u + 12345u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    // Small values: products and short accumulations stay within 16 bits.
    return static_cast<int64_t>((state >> 16) % 21) - 10;
  };
  for (const auto& sym : prog.symbols.all()) {
    if (sym->kind != SymKind::Input) continue;
    if (sym->isArray()) {
      std::vector<int64_t> vals(static_cast<size_t>(sym->arraySize));
      for (auto& v : vals) v = next();
      stim.arrays[sym->name] = std::move(vals);
    } else {
      std::vector<int64_t> vals(static_cast<size_t>(ticks));
      for (auto& v : vals) v = next();
      stim.scalars[sym->name] = std::move(vals);
    }
  }
  return stim;
}

}  // namespace record
