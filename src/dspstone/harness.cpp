#include "dspstone/harness.h"

#include "ir/interp.h"
#include "sim/machine.h"
#include "support/strings.h"

namespace record {

Measurement runAndCompare(const TargetProgram& tp, const Program& prog,
                          const Stimulus& stim, Profile* profile) {
  Measurement m;
  m.sizeWords = tp.sizeWords();

  // Golden model.
  Interp gold(prog);
  for (const auto& [name, vals] : stim.arrays) gold.setArray(name, vals);
  for (const auto& [name, vals] : stim.scalars) gold.setStream(name, vals);

  Machine mach(tp);
  mach.attachProfile(profile);
  // Preload arrays / initial values.
  for (const auto& [name, vals] : stim.arrays) {
    if (tp.addrOf(name) < 0) {
      m.error = "target program lacks symbol '" + name + "'";
      return m;
    }
    for (size_t i = 0; i < vals.size(); ++i)
      mach.writeSymbol(name, static_cast<int>(i), vals[i]);
  }

  for (int t = 0; t < stim.ticks; ++t) {
    // Per-tick scalar inputs.
    for (const auto& [name, vals] : stim.scalars) {
      int64_t v = vals.empty()
                      ? 0
                      : vals[std::min<size_t>(static_cast<size_t>(t),
                                              vals.size() - 1)];
      mach.writeSymbol(name, 0, v);
    }
    gold.run(1);
    auto rr = mach.run();
    if (rr.status != RunStatus::Halted) {
      m.error = formatv("tick %d: simulator did not halt (%s: %s)", t,
                        runStatusName(rr.status), rr.trapReason.c_str());
      return m;
    }
    m.cycles += rr.cycles;
    m.instructions += rr.instructions;
    // Compare output symbols after every tick.
    for (const auto& sym : prog.symbols.all()) {
      if (sym->kind != SymKind::Output) continue;
      int words = sym->isArray() ? sym->arraySize : 1;
      for (int i = 0; i < words; ++i) {
        int64_t want = sym->isArray() ? gold.array(sym->name)[static_cast<size_t>(i)]
                                      : gold.scalar(sym->name);
        int64_t got = mach.readSymbol(sym->name, i);
        if (want != got) {
          m.error = formatv("tick %d: %s[%d] = %lld, golden model says %lld",
                            t, sym->name.c_str(), i,
                            static_cast<long long>(got),
                            static_cast<long long>(want));
          return m;
        }
      }
    }
    // Re-arm for the next tick without clearing data memory.
    mach.reset(false);
  }
  m.ok = true;
  return m;
}

Stimulus defaultStimulus(const Program& prog, uint32_t seed, int ticks) {
  Stimulus stim;
  stim.ticks = ticks;
  uint32_t state = seed * 2654435761u + 12345u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    // Small values: products and short accumulations stay within 16 bits.
    return static_cast<int64_t>((state >> 16) % 21) - 10;
  };
  for (const auto& sym : prog.symbols.all()) {
    if (sym->kind != SymKind::Input) continue;
    if (sym->isArray()) {
      std::vector<int64_t> vals(static_cast<size_t>(sym->arraySize));
      for (auto& v : vals) v = next();
      stim.arrays[sym->name] = std::move(vals);
    } else {
      std::vector<int64_t> vals(static_cast<size_t>(ticks));
      for (auto& v : vals) v = next();
      stim.scalars[sym->name] = std::move(vals);
    }
  }
  return stim;
}

}  // namespace record
