#include "dspstone/harness.h"

#include "ir/interp.h"
#include "sim/machine.h"
#include "sim/reference.h"
#include "support/strings.h"

namespace record {

Measurement runAndCompare(const TargetProgram& tp, const Program& prog,
                          const Stimulus& stim, Profile* profile) {
  Measurement m;
  m.sizeWords = tp.sizeWords();

  // Golden model.
  Interp gold(prog);
  for (const auto& [name, vals] : stim.arrays) gold.setArray(name, vals);
  for (const auto& [name, vals] : stim.scalars) gold.setStream(name, vals);

  Machine mach(tp);
  mach.attachProfile(profile);
  // Preload arrays / initial values.
  for (const auto& [name, vals] : stim.arrays) {
    if (tp.addrOf(name) < 0) {
      m.error = "target program lacks symbol '" + name + "'";
      return m;
    }
    for (size_t i = 0; i < vals.size(); ++i)
      mach.writeSymbol(name, static_cast<int>(i), vals[i]);
  }

  for (int t = 0; t < stim.ticks; ++t) {
    // Per-tick scalar inputs.
    for (const auto& [name, vals] : stim.scalars) {
      int64_t v = vals.empty()
                      ? 0
                      : vals[std::min<size_t>(static_cast<size_t>(t),
                                              vals.size() - 1)];
      mach.writeSymbol(name, 0, v);
    }
    gold.run(1);
    auto rr = mach.run();
    if (rr.status != RunStatus::Halted) {
      m.error = formatv("tick %d: simulator did not halt (%s: %s)", t,
                        runStatusName(rr.status), rr.trapReason.c_str());
      return m;
    }
    m.cycles += rr.cycles;
    m.instructions += rr.instructions;
    // Compare output symbols after every tick.
    for (const auto& sym : prog.symbols.all()) {
      if (sym->kind != SymKind::Output) continue;
      int words = sym->isArray() ? sym->arraySize : 1;
      for (int i = 0; i < words; ++i) {
        int64_t want = sym->isArray() ? gold.array(sym->name)[static_cast<size_t>(i)]
                                      : gold.scalar(sym->name);
        int64_t got = mach.readSymbol(sym->name, i);
        if (want != got) {
          m.error = formatv("tick %d: %s[%d] = %lld, golden model says %lld",
                            t, sym->name.c_str(), i,
                            static_cast<long long>(got),
                            static_cast<long long>(want));
          return m;
        }
      }
    }
    // Re-arm for the next tick without clearing data memory.
    mach.reset(false);
  }
  m.ok = true;
  return m;
}

std::string compareSimEngines(const TargetProgram& tp, const Stimulus& stim) {
  Machine dec(tp);
  ReferenceMachine ref(tp);

  for (const auto& [name, vals] : stim.arrays) {
    if (tp.addrOf(name) < 0)
      return "target program lacks symbol '" + name + "'";
    for (size_t i = 0; i < vals.size(); ++i) {
      dec.writeSymbol(name, static_cast<int>(i), vals[i]);
      ref.writeSymbol(name, static_cast<int>(i), vals[i]);
    }
  }

  for (int t = 0; t < stim.ticks; ++t) {
    for (const auto& [name, vals] : stim.scalars) {
      int64_t v = vals.empty()
                      ? 0
                      : vals[std::min<size_t>(static_cast<size_t>(t),
                                              vals.size() - 1)];
      dec.writeSymbol(name, 0, v);
      ref.writeSymbol(name, 0, v);
    }
    auto rd = dec.run();
    auto rr = ref.run();
    if (rd.status != rr.status)
      return formatv("tick %d: status %s (decoded) vs %s (reference)", t,
                     runStatusName(rd.status), runStatusName(rr.status));
    if (rd.trapReason != rr.trapReason)
      return formatv("tick %d: trap reason '%s' (decoded) vs '%s' (reference)",
                     t, rd.trapReason.c_str(), rr.trapReason.c_str());
    if (rd.cycles != rr.cycles)
      return formatv("tick %d: cycles %lld (decoded) vs %lld (reference)", t,
                     static_cast<long long>(rd.cycles),
                     static_cast<long long>(rr.cycles));
    if (rd.instructions != rr.instructions)
      return formatv("tick %d: instructions %lld (decoded) vs %lld (reference)",
                     t, static_cast<long long>(rd.instructions),
                     static_cast<long long>(rr.instructions));
    if (dec.acc() != ref.acc() || dec.treg() != ref.treg() ||
        dec.preg() != ref.preg())
      return formatv(
          "tick %d: ACC/T/P %lld/%lld/%lld (decoded) vs %lld/%lld/%lld "
          "(reference)",
          t, static_cast<long long>(dec.acc()),
          static_cast<long long>(dec.treg()),
          static_cast<long long>(dec.preg()),
          static_cast<long long>(ref.acc()),
          static_cast<long long>(ref.treg()),
          static_cast<long long>(ref.preg()));
    for (int i = 0; i < tp.config.numAddrRegs; ++i)
      if (dec.ar(i) != ref.ar(i))
        return formatv("tick %d: AR%d = %d (decoded) vs %d (reference)", t, i,
                       dec.ar(i), ref.ar(i));
    if (dec.ovm() != ref.ovm() || dec.sxm() != ref.sxm())
      return formatv("tick %d: OVM/SXM mode bits diverge", t);
    if (dec.pc() != ref.pc())
      return formatv("tick %d: PC %d (decoded) vs %d (reference)", t,
                     dec.pc(), ref.pc());
    for (int a = 0; a < tp.config.dataWords; ++a)
      if (dec.readData(a) != ref.readData(a))
        return formatv("tick %d: data[%d] = %lld (decoded) vs %lld "
                       "(reference)",
                       t, a, static_cast<long long>(dec.readData(a)),
                       static_cast<long long>(ref.readData(a)));
    // A trap or budget exit is terminal and already proven identical;
    // further ticks would just replay it from a stale PC.
    if (rd.status != RunStatus::Halted) break;
    dec.reset(false);
    ref.reset(false);
  }
  return "";
}

Stimulus defaultStimulus(const Program& prog, uint32_t seed, int ticks) {
  Stimulus stim;
  stim.ticks = ticks;
  uint32_t state = seed * 2654435761u + 12345u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    // Small values: products and short accumulations stay within 16 bits.
    return static_cast<int64_t>((state >> 16) % 21) - 10;
  };
  for (const auto& sym : prog.symbols.all()) {
    if (sym->kind != SymKind::Input) continue;
    if (sym->isArray()) {
      std::vector<int64_t> vals(static_cast<size_t>(sym->arraySize));
      for (auto& v : vals) v = next();
      stim.arrays[sym->name] = std::move(vals);
    } else {
      std::vector<int64_t> vals(static_cast<size_t>(ticks));
      for (auto& v : vals) v = next();
      stim.scalars[sym->name] = std::move(vals);
    }
  }
  return stim;
}

}  // namespace record
