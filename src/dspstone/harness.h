// Measurement & verification harness shared by tests and benches: runs a
// compiled (or hand-written) tdsp program against the IR golden-model
// interpreter on the same stimulus and reports size/cycles plus any
// mismatch. This is how every Table-1 number in the benches is validated
// before being reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.h"
#include "target/isa.h"

namespace record {

class Profile;

struct Stimulus {
  // Array inputs (and initial var contents), by symbol name.
  std::map<std::string, std::vector<int64_t>> arrays;
  // Scalar input streams: element t is the value at tick t. A single-element
  // vector acts as a constant input.
  std::map<std::string, std::vector<int64_t>> scalars;
  int ticks = 1;
};

struct Measurement {
  bool ok = false;          // simulated outputs match the golden model
  std::string error;        // first mismatch / trap description
  int sizeWords = 0;        // program-memory words
  int64_t cycles = 0;       // total simulator cycles over all ticks
  int64_t instructions = 0;
};

/// Run `tp` against the golden model of `prog` on `stim`. The target
/// program must lay out every program symbol by name (compiled programs and
/// the in-tree reference assemblies both do). When `profile` is non-null it
/// is attached to the simulator for every tick, accumulating an execution
/// profile across the whole stimulus (it must be built against `tp`).
Measurement runAndCompare(const TargetProgram& tp, const Program& prog,
                          const Stimulus& stim, Profile* profile = nullptr);

/// Deterministic pseudo-random stimulus for a program: fills every input
/// with small values (safe against 16-bit accumulation overflow) derived
/// from `seed`.
Stimulus defaultStimulus(const Program& prog, uint32_t seed = 1,
                         int ticks = 4);

/// Run `tp` on `stim` under all three simulator engines -- the decode-once
/// Machine with superblock translation forced on, the same Machine with
/// translation forced off, and the pre-decode ReferenceMachine -- and
/// require bit-identical behavior: same RunResult (status, trap reason,
/// cycles, instructions), same architectural state (ACC/T/P/ARs/OVM/SXM/PC),
/// and same full data memory after every tick. Returns "" when identical,
/// else a description of the first divergence. Used by sim_test,
/// translate_test, the difftest oracle, and bench/sim_throughput's
/// verification pass; this is what keeps translation honest (see
/// sim/translate.h's deopt contract).
std::string compareSimEngines(const TargetProgram& tp, const Stimulus& stim);

}  // namespace record
