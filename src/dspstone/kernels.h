// The ten DSPStone kernels of Table 1, as DFL sources, plus hand-written
// tdsp reference assembly for each (the role of the paper's assembly
// library: the 100 % line). Reference assemblies are verified against the
// golden model by tests/dspstone_test.cpp before any bench reports ratios.
#pragma once

#include <string>
#include <vector>

namespace record {

struct Kernel {
  std::string name;   // Table 1 row name
  std::string dfl;    // DFL source
  std::string refAsm; // hand-written tdsp assembly (default TargetConfig)
  int ticks = 4;      // verification ticks (delay-line kernels need > 1)
};

/// All ten kernels in Table 1 row order.
const std::vector<Kernel>& dspstoneKernels();

/// Lookup by name; throws std::out_of_range if absent.
const Kernel& kernelByName(const std::string& name);

}  // namespace record
