// Tokens of the DFL subset (the DSP-specific source language of RECORD's
// frontend, Fig. 2 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.h"

namespace record::dfl {

enum class Tok : uint8_t {
  End,
  Ident,
  Number,
  // keywords
  KwProgram,
  KwInput,
  KwOutput,
  KwVar,
  KwConst,
  KwDelay,
  KwFix,
  KwInt,
  KwBegin,
  KwEnd,
  KwFor,
  KwTo,
  KwStep,
  KwDo,
  KwEndfor,
  // punctuation / operators
  Semi,       // ;
  Colon,      // :
  Assign,     // :=
  Comma,      // ,
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  Plus,       // +
  Minus,      // -
  Star,       // *
  PlusSat,    // +| saturating add
  MinusSat,   // -| saturating subtract
  Shl,        // <<
  Shr,        // >> (arithmetic)
  Shru,       // >>> (logical)
  At,         // @ delayed signal access
  Eq,         // =
  Amp,        // & bitwise and
  Pipe,       // | bitwise or
  Caret,      // ^ bitwise xor
};

const char* tokName(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;
  int64_t number = 0;
  SourceLoc loc;
};

}  // namespace record::dfl
