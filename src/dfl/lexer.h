// Hand-written lexer for the DFL subset. Comments: `//` to end of line.
#pragma once

#include <string>
#include <vector>

#include "dfl/token.h"
#include "support/diag.h"

namespace record::dfl {

class Lexer {
 public:
  Lexer(std::string source, DiagEngine& diag);

  /// Tokenize the whole input. On lexical errors, diagnostics are recorded
  /// and the offending characters skipped.
  std::vector<Token> lexAll();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool atEnd() const;
  SourceLoc here() const;

  std::string src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  DiagEngine& diag_;
};

}  // namespace record::dfl
