// Semantic analysis + lowering: resolves names, evaluates compile-time
// constant expressions (array sizes, delays, loop bounds), checks delayed
// accesses against declared delay depths, and produces the typed IR Program.
#pragma once

#include <optional>

#include "dfl/ast.h"
#include "ir/program.h"
#include "support/diag.h"

namespace record::dfl {

/// Lower a parsed program. Returns nullopt (with diagnostics) on semantic
/// errors. The returned Program owns its symbol table.
std::optional<Program> lower(const AstProgram& ast, DiagEngine& diag);

}  // namespace record::dfl
