#include "dfl/parser.h"

#include <utility>

namespace record::dfl {

namespace {
AstExprPtr mkNumber(int64_t v, SourceLoc loc) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExpr::Kind::Number;
  e->number = v;
  e->loc = loc;
  return e;
}
}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagEngine& diag)
    : toks_(std::move(tokens)), diag_(diag) {
  if (toks_.empty()) toks_.push_back(Token{});
}

const Token& Parser::peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  return i < toks_.size() ? toks_[i] : toks_.back();
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(Tok k, const char* context) {
  if (match(k)) return true;
  diag_.error(peek().loc, std::string("expected ") + tokName(k) + " " +
                              context + ", found " + tokName(peek().kind));
  return false;
}

std::optional<AstProgram> Parser::parseProgram() {
  AstProgram prog;
  expect(Tok::KwProgram, "at start of program");
  if (check(Tok::Ident)) prog.name = advance().text;
  else diag_.error(peek().loc, "expected program name");
  expect(Tok::Semi, "after program name");

  while (check(Tok::KwInput) || check(Tok::KwOutput) || check(Tok::KwVar) ||
         check(Tok::KwConst)) {
    prog.decls.push_back(parseDecl());
  }
  expect(Tok::KwBegin, "before statements");
  while (!check(Tok::KwEnd) && !check(Tok::End)) {
    prog.body.push_back(parseStmt());
    if (diag_.hasErrors() && check(Tok::End)) break;
  }
  expect(Tok::KwEnd, "at end of program");
  if (diag_.hasErrors()) return std::nullopt;
  return prog;
}

AstDecl Parser::parseDecl() {
  AstDecl d;
  d.loc = peek().loc;
  switch (peek().kind) {
    case Tok::KwInput: d.kind = AstDecl::Kind::Input; break;
    case Tok::KwOutput: d.kind = AstDecl::Kind::Output; break;
    case Tok::KwVar: d.kind = AstDecl::Kind::Var; break;
    case Tok::KwConst: d.kind = AstDecl::Kind::Const; break;
    default: break;
  }
  advance();
  if (check(Tok::Ident)) d.name = advance().text;
  else diag_.error(peek().loc, "expected declaration name");

  if (d.kind == AstDecl::Kind::Const) {
    expect(Tok::Eq, "in const declaration");
    d.constInit = parseExpr();
    expect(Tok::Semi, "after const declaration");
    return d;
  }
  if (match(Tok::LBracket)) {
    d.arraySize = parseExpr();
    expect(Tok::RBracket, "after array size");
  }
  if (match(Tok::KwDelay)) d.delay = parseExpr();
  expect(Tok::Colon, "before type");
  if (match(Tok::KwFix)) d.type = Type::Fix;
  else if (match(Tok::KwInt)) d.type = Type::Int;
  else diag_.error(peek().loc, "expected type 'fix' or 'int'");
  expect(Tok::Semi, "after declaration");
  return d;
}

AstStmt Parser::parseStmt() {
  AstStmt s;
  s.loc = peek().loc;
  if (match(Tok::KwFor)) {
    s.kind = AstStmt::Kind::For;
    if (check(Tok::Ident)) s.ivar = advance().text;
    else diag_.error(peek().loc, "expected loop variable");
    expect(Tok::Assign, "in for header");
    s.lo = parseExpr();
    expect(Tok::KwTo, "in for header");
    s.hi = parseExpr();
    if (match(Tok::KwStep)) s.step = parseExpr();
    expect(Tok::KwDo, "after for header");
    while (!check(Tok::KwEndfor) && !check(Tok::End)) {
      s.body.push_back(parseStmt());
      if (diag_.hasErrors() && check(Tok::End)) break;
    }
    expect(Tok::KwEndfor, "at end of loop");
    match(Tok::Semi);
    return s;
  }
  s.kind = AstStmt::Kind::Assign;
  if (check(Tok::Ident)) s.lhsName = advance().text;
  else {
    diag_.error(peek().loc, "expected statement");
    advance();
    return s;
  }
  if (match(Tok::LBracket)) {
    s.lhsIndex = parseExpr();
    expect(Tok::RBracket, "after store index");
  }
  expect(Tok::Assign, "in assignment");
  s.rhs = parseExpr();
  expect(Tok::Semi, "after assignment");
  return s;
}

AstExprPtr Parser::parseExpr() {
  auto lhs = parseAdd();
  while (check(Tok::Amp) || check(Tok::Caret) || check(Tok::Pipe)) {
    Tok op = advance().kind;
    auto rhs = parseAdd();
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Binary;
    e->op = op;
    e->loc = lhs ? lhs->loc : peek().loc;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
  return lhs;
}

AstExprPtr Parser::parseAdd() {
  auto lhs = parseMul();
  while (check(Tok::Plus) || check(Tok::Minus) || check(Tok::PlusSat) ||
         check(Tok::MinusSat)) {
    Tok op = advance().kind;
    auto rhs = parseMul();
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Binary;
    e->op = op;
    e->loc = lhs ? lhs->loc : peek().loc;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
  return lhs;
}

AstExprPtr Parser::parseMul() {
  auto lhs = parseShift();
  while (check(Tok::Star)) {
    Tok op = advance().kind;
    auto rhs = parseShift();
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Binary;
    e->op = op;
    e->loc = lhs ? lhs->loc : peek().loc;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
  return lhs;
}

AstExprPtr Parser::parseShift() {
  auto lhs = parseUnary();
  while (check(Tok::Shl) || check(Tok::Shr) || check(Tok::Shru)) {
    Tok op = advance().kind;
    auto rhs = parseUnary();
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Binary;
    e->op = op;
    e->loc = lhs ? lhs->loc : peek().loc;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
  return lhs;
}

AstExprPtr Parser::parseUnary() {
  if (check(Tok::Minus)) {
    SourceLoc loc = advance().loc;
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Unary;
    e->op = Tok::Minus;
    e->loc = loc;
    e->lhs = parseUnary();
    return e;
  }
  return parsePrimary();
}

AstExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  if (check(Tok::Number)) {
    advance();
    return mkNumber(t.number, t.loc);
  }
  if (check(Tok::LParen)) {
    advance();
    auto e = parseExpr();
    expect(Tok::RParen, "after parenthesized expression");
    return e;
  }
  if (check(Tok::Ident)) {
    Token id = advance();
    if (match(Tok::LBracket)) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::Index;
      e->name = id.text;
      e->loc = id.loc;
      e->lhs = parseExpr();
      expect(Tok::RBracket, "after array index");
      return e;
    }
    if (match(Tok::At)) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExpr::Kind::Delay;
      e->name = id.text;
      e->loc = id.loc;
      if (check(Tok::Number)) e->number = advance().number;
      else diag_.error(peek().loc, "expected delay depth after '@'");
      return e;
    }
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::Name;
    e->name = id.text;
    e->loc = id.loc;
    return e;
  }
  diag_.error(t.loc, std::string("expected expression, found ") +
                         tokName(t.kind));
  advance();
  return mkNumber(0, t.loc);
}

}  // namespace record::dfl
