#include "dfl/frontend.h"

#include <stdexcept>

#include "dfl/lexer.h"
#include "dfl/lower.h"
#include "dfl/parser.h"

namespace record::dfl {

std::optional<Program> parseDfl(const std::string& source, DiagEngine& diag,
                                const std::string& sourceName) {
  if (!sourceName.empty()) diag.setSourceName(sourceName);
  Lexer lex(source, diag);
  auto toks = lex.lexAll();
  if (diag.hasErrors()) return std::nullopt;
  Parser parser(std::move(toks), diag);
  auto ast = parser.parseProgram();
  if (!ast) return std::nullopt;
  return lower(*ast, diag);
}

Program parseDflOrDie(const std::string& source,
                      const std::string& sourceName) {
  DiagEngine diag;
  auto prog = parseDfl(source, diag, sourceName);
  if (!prog)
    throw std::runtime_error("DFL compilation failed:\n" + diag.str());
  return std::move(*prog);
}

}  // namespace record::dfl
