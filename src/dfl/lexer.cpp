#include "dfl/lexer.h"

#include <cctype>
#include <map>

namespace record::dfl {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwProgram: return "'program'";
    case Tok::KwInput: return "'input'";
    case Tok::KwOutput: return "'output'";
    case Tok::KwVar: return "'var'";
    case Tok::KwConst: return "'const'";
    case Tok::KwDelay: return "'delay'";
    case Tok::KwFix: return "'fix'";
    case Tok::KwInt: return "'int'";
    case Tok::KwBegin: return "'begin'";
    case Tok::KwEnd: return "'end'";
    case Tok::KwFor: return "'for'";
    case Tok::KwTo: return "'to'";
    case Tok::KwStep: return "'step'";
    case Tok::KwDo: return "'do'";
    case Tok::KwEndfor: return "'endfor'";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "':='";
    case Tok::Comma: return "','";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::PlusSat: return "'+|'";
    case Tok::MinusSat: return "'-|'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Shru: return "'>>>'";
    case Tok::At: return "'@'";
    case Tok::Eq: return "'='";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
  }
  return "?";
}

namespace {
const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"program", Tok::KwProgram}, {"input", Tok::KwInput},
      {"output", Tok::KwOutput},   {"var", Tok::KwVar},
      {"const", Tok::KwConst},     {"delay", Tok::KwDelay},
      {"fix", Tok::KwFix},         {"int", Tok::KwInt},
      {"begin", Tok::KwBegin},     {"end", Tok::KwEnd},
      {"for", Tok::KwFor},         {"to", Tok::KwTo},
      {"step", Tok::KwStep},       {"do", Tok::KwDo},
      {"endfor", Tok::KwEndfor},
  };
  return kw;
}
}  // namespace

Lexer::Lexer(std::string source, DiagEngine& diag)
    : src_(std::move(source)), diag_(diag) {}

char Lexer::peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::atEnd() const { return pos_ >= src_.size(); }

SourceLoc Lexer::here() const { return {line_, col_, diag_.sourceName()}; }

Token Lexer::next() {
  // Skip whitespace and comments.
  while (!atEnd()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else {
      break;
    }
  }
  Token t;
  t.loc = here();
  if (atEnd()) {
    t.kind = Tok::End;
    return t;
  }
  char c = advance();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string id(1, c);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      id.push_back(advance());
    auto it = keywords().find(id);
    t.kind = it != keywords().end() ? it->second : Tok::Ident;
    t.text = std::move(id);
    return t;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    // Literals denote 16-bit data words, so anything past 0xffff is a
    // typo, not a bigger number; accumulate in uint64 with a clamp (the
    // old int64 accumulation overflowed -- undefined behavior -- on
    // absurdly long literals) and diagnose once per literal.
    constexpr uint64_t kMax = 0xffff;
    uint64_t v = static_cast<uint64_t>(c - '0');
    bool overflow = false;
    // Hex literals: 0x...
    if (v == 0 && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool any = false;
      while (!atEnd() &&
             std::isxdigit(static_cast<unsigned char>(peek()))) {
        char d = advance();
        any = true;
        v = v * 16 + static_cast<uint64_t>(
                         std::isdigit(static_cast<unsigned char>(d))
                             ? d - '0'
                             : std::tolower(d) - 'a' + 10);
        if (v > kMax) {
          overflow = true;
          v = kMax;
        }
      }
      if (!any) diag_.error(t.loc, "hex literal with no digits");
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        v = v * 10 + static_cast<uint64_t>(advance() - '0');
        if (v > kMax) {
          overflow = true;
          v = kMax;
        }
      }
    }
    if (overflow)
      diag_.error(t.loc,
                  "integer literal exceeds the 16-bit data word (max 65535)");
    t.kind = Tok::Number;
    t.number = static_cast<int64_t>(v);
    return t;
  }
  switch (c) {
    case ';': t.kind = Tok::Semi; return t;
    case ',': t.kind = Tok::Comma; return t;
    case '(': t.kind = Tok::LParen; return t;
    case ')': t.kind = Tok::RParen; return t;
    case '[': t.kind = Tok::LBracket; return t;
    case ']': t.kind = Tok::RBracket; return t;
    case '*': t.kind = Tok::Star; return t;
    case '@': t.kind = Tok::At; return t;
    case '=': t.kind = Tok::Eq; return t;
    case '&': t.kind = Tok::Amp; return t;
    case '|': t.kind = Tok::Pipe; return t;
    case '^': t.kind = Tok::Caret; return t;
    case ':':
      if (peek() == '=') {
        advance();
        t.kind = Tok::Assign;
      } else {
        t.kind = Tok::Colon;
      }
      return t;
    case '+':
      if (peek() == '|') {
        advance();
        t.kind = Tok::PlusSat;
      } else {
        t.kind = Tok::Plus;
      }
      return t;
    case '-':
      if (peek() == '|') {
        advance();
        t.kind = Tok::MinusSat;
      } else {
        t.kind = Tok::Minus;
      }
      return t;
    case '<':
      if (peek() == '<') {
        advance();
        t.kind = Tok::Shl;
        return t;
      }
      break;
    case '>':
      if (peek() == '>') {
        advance();
        if (peek() == '>') {
          advance();
          t.kind = Tok::Shru;
        } else {
          t.kind = Tok::Shr;
        }
        return t;
      }
      break;
    default:
      break;
  }
  diag_.error(t.loc, std::string("unexpected character '") + c + "'");
  return next();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool end = (t.kind == Tok::End);
    out.push_back(std::move(t));
    if (end) break;
  }
  return out;
}

}  // namespace record::dfl
