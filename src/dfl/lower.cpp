#include "dfl/lower.h"

#include <map>
#include <memory>

namespace record::dfl {

namespace {

class Lowerer {
 public:
  Lowerer(const AstProgram& ast, DiagEngine& diag) : ast_(ast), diag_(diag) {}

  std::optional<Program> run() {
    prog_ = std::make_unique<Program>();
    prog_->name = ast_.name;
    for (const auto& d : ast_.decls) lowerDecl(d);
    for (const auto& s : ast_.body) {
      auto st = lowerStmt(s);
      if (st) prog_->body.push_back(std::move(*st));
    }
    if (diag_.hasErrors()) return std::nullopt;
    return std::move(*prog_);
  }

 private:
  // ---- constant expression evaluation (decl sizes, loop bounds) ----------
  std::optional<int64_t> evalConst(const AstExpr& e) {
    switch (e.kind) {
      case AstExpr::Kind::Number:
        return e.number;
      case AstExpr::Kind::Name: {
        const Symbol* s = prog_->symbols.lookup(e.name);
        if (s && s->kind == SymKind::Const) return s->constValue;
        diag_.error(e.loc, "'" + e.name + "' is not a compile-time constant");
        return std::nullopt;
      }
      case AstExpr::Kind::Unary: {
        auto v = evalConst(*e.lhs);
        if (!v) return std::nullopt;
        return static_cast<int64_t>(0 - static_cast<uint64_t>(*v));
      }
      case AstExpr::Kind::Binary: {
        auto a = evalConst(*e.lhs);
        auto b = evalConst(*e.rhs);
        if (!a || !b) return std::nullopt;
        // Wrap in uint64 (defined) -- the old signed +,*,<< overflowed on
        // adversarial constant expressions.
        uint64_t ua = static_cast<uint64_t>(*a);
        uint64_t ub = static_cast<uint64_t>(*b);
        switch (e.op) {
          case Tok::Plus:
          case Tok::PlusSat: return static_cast<int64_t>(ua + ub);
          case Tok::Minus:
          case Tok::MinusSat: return static_cast<int64_t>(ua - ub);
          case Tok::Star: return static_cast<int64_t>(ua * ub);
          case Tok::Shl: return static_cast<int64_t>(ua << (*b & 31));
          case Tok::Shr: return *a >> (*b & 31);
          case Tok::Shru:
            return static_cast<int64_t>(
                (static_cast<uint64_t>(*a) & 0xffffffffull) >> (*b & 31));
          default: break;
        }
        diag_.error(e.loc, "operator not allowed in constant expression");
        return std::nullopt;
      }
      default:
        diag_.error(e.loc, "not a constant expression");
        return std::nullopt;
    }
  }

  void lowerDecl(const AstDecl& d) {
    if (prog_->symbols.lookup(d.name)) {
      diag_.error(d.loc, "redefinition of '" + d.name + "'");
      return;
    }
    Symbol sym;
    sym.name = d.name;
    sym.type = d.type;
    switch (d.kind) {
      case AstDecl::Kind::Input: sym.kind = SymKind::Input; break;
      case AstDecl::Kind::Output: sym.kind = SymKind::Output; break;
      case AstDecl::Kind::Var: sym.kind = SymKind::Var; break;
      case AstDecl::Kind::Const: {
        sym.kind = SymKind::Const;
        sym.type = Type::Int;
        auto v = evalConst(*d.constInit);
        if (v) sym.constValue = *v;
        prog_->symbols.define(std::move(sym));
        return;
      }
    }
    if (d.arraySize) {
      auto n = evalConst(*d.arraySize);
      if (n) {
        if (*n <= 0 || *n > 4096)
          diag_.error(d.loc, "array size out of range (1..4096)");
        else
          sym.arraySize = static_cast<int>(*n);
      }
    }
    if (d.delay) {
      auto n = evalConst(*d.delay);
      if (n) {
        if (*n <= 0 || *n > 256)
          diag_.error(d.loc, "delay depth out of range (1..256)");
        else if (sym.isArray())
          diag_.error(d.loc, "arrays cannot be delayed signals");
        else
          sym.delayDepth = static_cast<int>(*n);
      }
    }
    prog_->symbols.define(std::move(sym));
  }

  ExprPtr lowerExpr(const AstExpr& e) {
    switch (e.kind) {
      case AstExpr::Kind::Number:
        // Literals in expressions denote 16-bit data words, exactly like
        // every storage cell: 0x8000..0xffff wrap to negative values. The
        // machine can only materialize a literal through a 16-bit constant
        // pool word, so wrapping here keeps the golden model and the
        // hardware in exact agreement (difftest caught (0 - 32768) >> 8
        // diverging when 32768 was kept wide).
        return Expr::constant(wrap16(e.number), Type::Int);
      case AstExpr::Kind::Name: {
        const Symbol* s = prog_->symbols.lookup(e.name);
        if (!s) {
          diag_.error(e.loc, "undeclared identifier '" + e.name + "'");
          return Expr::constant(0);
        }
        if (s->isArray()) {
          diag_.error(e.loc, "array '" + e.name + "' used without index");
          return Expr::constant(0);
        }
        // Constants resolve at lowering time (name resolution, not an
        // optimization): index arithmetic and shift amounts must see them.
        // Like literals, their expression value is the 16-bit word (the
        // raw value still drives array sizes, bounds and shift amounts
        // through evalConst).
        if (s->kind == SymKind::Const)
          return Expr::constant(wrap16(s->constValue), Type::Int);
        return Expr::ref(s);
      }
      case AstExpr::Kind::Index: {
        const Symbol* s = prog_->symbols.lookup(e.name);
        if (!s) {
          diag_.error(e.loc, "undeclared identifier '" + e.name + "'");
          return Expr::constant(0);
        }
        if (!s->isArray()) {
          diag_.error(e.loc, "'" + e.name + "' is not an array");
          return Expr::constant(0);
        }
        auto idx = lowerExpr(*e.lhs);
        if (idx->op == Op::Const &&
            (idx->value < 0 || idx->value >= s->arraySize))
          diag_.error(e.loc, "constant index out of bounds for '" + e.name +
                                 "'");
        return Expr::arrayRef(s, std::move(idx));
      }
      case AstExpr::Kind::Delay: {
        const Symbol* s = prog_->symbols.lookup(e.name);
        if (!s) {
          diag_.error(e.loc, "undeclared identifier '" + e.name + "'");
          return Expr::constant(0);
        }
        if (e.number < 1 || e.number > s->delayDepth) {
          diag_.error(e.loc, "'" + e.name + "@" + std::to_string(e.number) +
                                 "' exceeds declared delay depth " +
                                 std::to_string(s->delayDepth));
          return Expr::constant(0);
        }
        return Expr::ref(s, static_cast<int>(e.number));
      }
      case AstExpr::Kind::Unary:
        return Expr::unary(Op::Neg, lowerExpr(*e.lhs));
      case AstExpr::Kind::Binary: {
        auto a = lowerExpr(*e.lhs);
        auto b = lowerExpr(*e.rhs);
        Op op;
        switch (e.op) {
          case Tok::Plus: op = Op::Add; break;
          case Tok::Minus: op = Op::Sub; break;
          case Tok::Star: op = Op::Mul; break;
          case Tok::PlusSat: op = Op::SatAdd; break;
          case Tok::MinusSat: op = Op::SatSub; break;
          case Tok::Shl: op = Op::Shl; break;
          case Tok::Shr: op = Op::Shr; break;
          case Tok::Shru: op = Op::Shru; break;
          case Tok::Amp: op = Op::And; break;
          case Tok::Pipe: op = Op::Or; break;
          case Tok::Caret: op = Op::Xor; break;
          default:
            diag_.error(e.loc, "bad binary operator");
            return a;
        }
        if ((op == Op::Shl || op == Op::Shr || op == Op::Shru) &&
            b->op != Op::Const)
          diag_.error(e.loc, "shift amount must be a constant");
        return Expr::binary(op, std::move(a), std::move(b));
      }
    }
    return Expr::constant(0);
  }

  std::optional<Stmt> lowerStmt(const AstStmt& s) {
    if (s.kind == AstStmt::Kind::Assign) {
      const Symbol* lhs = prog_->symbols.lookup(s.lhsName);
      if (!lhs) {
        diag_.error(s.loc, "undeclared identifier '" + s.lhsName + "'");
        return std::nullopt;
      }
      if (lhs->kind == SymKind::Input || lhs->kind == SymKind::Const ||
          lhs->kind == SymKind::Induction) {
        diag_.error(s.loc, "cannot assign to " + symKindName(lhs->kind) +
                               " '" + s.lhsName + "'");
        return std::nullopt;
      }
      ExprPtr idx;
      if (s.lhsIndex) {
        if (!lhs->isArray()) {
          diag_.error(s.loc, "'" + s.lhsName + "' is not an array");
          return std::nullopt;
        }
        idx = lowerExpr(*s.lhsIndex);
      } else if (lhs->isArray()) {
        diag_.error(s.loc, "array '" + s.lhsName + "' assigned without index");
        return std::nullopt;
      }
      Stmt st = Stmt::assign(lhs, lowerExpr(*s.rhs), std::move(idx));
      // Keep only line/col: `file` points into the DiagEngine, which may
      // not outlive the lowered Program.
      st.loc.line = s.loc.line;
      st.loc.col = s.loc.col;
      return st;
    }
    // For loop: bounds must be compile-time constants.
    auto lo = evalConst(*s.lo);
    auto hi = evalConst(*s.hi);
    int64_t step = 1;
    if (s.step) {
      auto st = evalConst(*s.step);
      if (st) step = *st;
      if (step == 0) {
        diag_.error(s.loc, "loop step must be nonzero");
        step = 1;
      }
    }
    if (!lo || !hi) return std::nullopt;
    if (prog_->symbols.lookup(s.ivar)) {
      diag_.error(s.loc, "loop variable '" + s.ivar + "' shadows declaration");
      return std::nullopt;
    }
    Symbol iv;
    iv.name = s.ivar;
    iv.kind = SymKind::Induction;
    iv.type = Type::Int;
    Symbol* ivar = prog_->symbols.define(std::move(iv));
    std::vector<Stmt> body;
    for (const auto& b : s.body) {
      auto st = lowerStmt(b);
      if (st) body.push_back(std::move(*st));
    }
    // Induction variable stays defined (it is referenced by the body), but
    // rename it so a later loop can reuse the source name.
    ivar->name = s.ivar + "." + std::to_string(loopCounter_++);
    Stmt st = Stmt::forLoop(ivar, *lo, *hi, step, std::move(body));
    st.loc.line = s.loc.line;
    st.loc.col = s.loc.col;
    return st;
  }

  const AstProgram& ast_;
  DiagEngine& diag_;
  std::unique_ptr<Program> prog_;
  int loopCounter_ = 0;
};

}  // namespace

std::optional<Program> lower(const AstProgram& ast, DiagEngine& diag) {
  return Lowerer(ast, diag).run();
}

}  // namespace record::dfl
