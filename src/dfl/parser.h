// Recursive-descent parser for the DFL subset.
//
// Grammar sketch:
//   program  := 'program' ident ';' { decl } 'begin' { stmt } 'end'
//   decl     := kind ident [ '[' cexpr ']' ] [ 'delay' cexpr ] ':' type ';'
//             | 'const' ident '=' cexpr ';'
//   stmt     := ident [ '[' expr ']' ] ':=' expr ';'
//             | 'for' ident ':=' cexpr 'to' cexpr [ 'step' cexpr ]
//               'do' { stmt } 'endfor' [';']
//   expr     := band { ('&'|'^'|'|') band }   (bitwise, lowest, no mixing)
//   band     := mul { ('+'|'-'|'+|'|'-|') mul }
//   mul      := shift { '*' shift }
//   shift    := unary { ('<<'|'>>'|'>>>') unary }
//   unary    := '-' unary | primary
//   primary  := number | ident [ '[' expr ']' | '@' number ] | '(' expr ')'
#pragma once

#include <optional>
#include <vector>

#include "dfl/ast.h"
#include "dfl/token.h"
#include "support/diag.h"

namespace record::dfl {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagEngine& diag);

  /// Parse a whole program. Returns nullopt if any syntax error occurred.
  std::optional<AstProgram> parseProgram();

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok k) const { return peek().kind == k; }
  bool match(Tok k);
  bool expect(Tok k, const char* context);

  AstDecl parseDecl();
  AstStmt parseStmt();
  AstExprPtr parseExpr();
  AstExprPtr parseAdd();
  AstExprPtr parseMul();
  AstExprPtr parseShift();
  AstExprPtr parseUnary();
  AstExprPtr parsePrimary();

  std::vector<Token> toks_;
  size_t pos_ = 0;
  DiagEngine& diag_;
};

}  // namespace record::dfl
