// One-call facade over lexer + parser + lowering: DFL source text in,
// IR Program out.
#pragma once

#include <optional>
#include <string>

#include "ir/program.h"
#include "support/diag.h"

namespace record::dfl {

/// Compile DFL source into an IR program. Returns nullopt on any error;
/// diagnostics describe what went wrong.
std::optional<Program> parseDfl(const std::string& source, DiagEngine& diag);

/// Convenience wrapper that throws std::runtime_error with the rendered
/// diagnostics on failure. Used by tests, benches and examples where a
/// malformed built-in kernel is a programming error.
Program parseDflOrDie(const std::string& source);

}  // namespace record::dfl
