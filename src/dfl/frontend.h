// One-call facade over lexer + parser + lowering: DFL source text in,
// IR Program out.
#pragma once

#include <optional>
#include <string>

#include "ir/program.h"
#include "support/diag.h"

namespace record::dfl {

/// Compile DFL source into an IR program. Returns nullopt on any error;
/// diagnostics describe what went wrong. When `sourceName` is nonempty it
/// is recorded on the engine and every diagnostic location renders as
/// "name:line:col".
std::optional<Program> parseDfl(const std::string& source, DiagEngine& diag,
                                const std::string& sourceName = "");

/// Convenience wrapper that throws std::runtime_error with the rendered
/// diagnostics on failure. Used by tests, benches and examples where a
/// malformed built-in kernel is a programming error.
Program parseDflOrDie(const std::string& source,
                      const std::string& sourceName = "");

}  // namespace record::dfl
