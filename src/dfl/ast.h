// Untyped syntax tree produced by the parser; the lowering pass resolves
// names, evaluates constant expressions and emits the typed IR Program.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfl/token.h"
#include "ir/type.h"

namespace record::dfl {

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  enum class Kind : uint8_t { Number, Name, Index, Delay, Unary, Binary };

  Kind kind = Kind::Number;
  SourceLoc loc;
  int64_t number = 0;   // Number value; Delay depth
  std::string name;     // Name / Index / Delay
  Tok op = Tok::Plus;   // Unary / Binary operator token
  AstExprPtr lhs;       // Unary operand; Binary lhs; Index subscript
  AstExprPtr rhs;       // Binary rhs
};

struct AstStmt {
  enum class Kind : uint8_t { Assign, For };

  Kind kind = Kind::Assign;
  SourceLoc loc;

  // Assign
  std::string lhsName;
  AstExprPtr lhsIndex;  // null for scalar targets
  AstExprPtr rhs;

  // For
  std::string ivar;
  AstExprPtr lo, hi, step;  // step may be null (defaults to 1)
  std::vector<AstStmt> body;
};

struct AstDecl {
  enum class Kind : uint8_t { Input, Output, Var, Const };

  Kind kind = Kind::Var;
  SourceLoc loc;
  std::string name;
  AstExprPtr arraySize;  // null for scalars
  AstExprPtr delay;      // null if no delay-line declaration
  Type type = Type::Fix;
  AstExprPtr constInit;  // Kind::Const only
};

struct AstProgram {
  std::string name;
  std::vector<AstDecl> decls;
  std::vector<AstStmt> body;
};

}  // namespace record::dfl
