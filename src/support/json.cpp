#include "support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace record::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

namespace {

struct Parser {
  const std::string& in;
  size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at offset " + std::to_string(pos);
    return false;
  }

  void skipWs() {
    while (pos < in.size() &&
           (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
            in[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skipWs();
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parseString(std::string& out) {
    skipWs();
    if (pos >= in.size() || in[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < in.size()) {
      char c = in[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= in.size()) return fail("bad escape");
        char e = in[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > in.size()) return fail("bad \\u escape");
            for (int i = 0; i < 4; ++i)
              if (!std::isxdigit(static_cast<unsigned char>(in[pos + i])))
                return fail("bad \\u escape");
            // Validation only: non-ASCII escapes are kept literally.
            out += "\\u";
            out.append(in, pos, 4);
            pos += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Value& v, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skipWs();
    if (pos >= in.size()) return fail("unexpected end of input");
    char c = in[pos];
    if (c == '{') {
      ++pos;
      v.kind = Value::Kind::Object;
      skipWs();
      if (pos < in.size() && in[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        std::string key;
        if (!parseString(key)) return false;
        if (!consume(':')) return false;
        Value member;
        if (!parseValue(member, depth + 1)) return false;
        v.obj.emplace_back(std::move(key), std::move(member));
        skipWs();
        if (pos < in.size() && in[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = Value::Kind::Array;
      skipWs();
      if (pos < in.size() && in[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value elem;
        if (!parseValue(elem, depth + 1)) return false;
        v.arr.push_back(std::move(elem));
        skipWs();
        if (pos < in.size() && in[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::String;
      return parseString(v.str);
    }
    if (in.compare(pos, 4, "true") == 0) {
      v.kind = Value::Kind::Bool;
      v.boolean = true;
      pos += 4;
      return true;
    }
    if (in.compare(pos, 5, "false") == 0) {
      v.kind = Value::Kind::Bool;
      v.boolean = false;
      pos += 5;
      return true;
    }
    if (in.compare(pos, 4, "null") == 0) {
      v.kind = Value::Kind::Null;
      pos += 4;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = in.c_str() + pos;
      char* end = nullptr;
      v.kind = Value::Kind::Number;
      v.number = std::strtod(start, &end);
      if (end == start) return fail("bad number");
      pos += static_cast<size_t>(end - start);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* err) {
  Parser p{text};
  Value v;
  if (!p.parseValue(v, 0)) {
    if (err) *err = p.err;
    return std::nullopt;
  }
  p.skipWs();
  if (p.pos != text.size()) {
    if (err) *err = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return v;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace record::json
