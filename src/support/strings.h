// Small string helpers used across parsers and printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace record {

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string formatv(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Left-pad / right-pad to a column width (for table printers).
std::string padLeft(std::string s, size_t width);
std::string padRight(std::string s, size_t width);

}  // namespace record
