#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace record {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' || s[e - 1] == '\n')) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatv(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string padLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string padRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace record
