#include "support/threadpool.h"

#include <algorithm>

namespace record {

ThreadPool::ThreadPool(int threads) {
  workers_.reserve(static_cast<size_t>(threads > 0 ? threads : 0));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drainBatch(std::unique_lock<std::mutex>& lock) {
  while (batch_.fn && batch_.next < batch_.jobs) {
    int i = batch_.next++;
    ++batch_.running;
    const std::function<void(int)>* fn = batch_.fn;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !batch_.error) batch_.error = err;
    if (--batch_.running == 0 && batch_.next >= batch_.jobs)
      done_.notify_all();
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_.wait(lock, [this] {
      return stop_ || (batch_.fn && batch_.next < batch_.jobs);
    });
    if (stop_) return;
    drainBatch(lock);
  }
}

void ThreadPool::parallelFor(int jobs, const std::function<void(int)>& fn) {
  if (jobs <= 0) return;
  if (workers_.empty() || jobs == 1) {
    for (int i = 0; i < jobs; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (batch_.fn) {
    // The single batch slot is owned by another parallelFor (a concurrent
    // caller, or this very thread re-entering from inside a job). Claiming
    // it would corrupt that batch; run inline instead.
    lock.unlock();
    for (int i = 0; i < jobs; ++i) fn(i);
    return;
  }
  batch_.fn = &fn;
  batch_.jobs = jobs;
  batch_.next = 0;
  batch_.running = 0;
  batch_.error = nullptr;
  wake_.notify_all();
  drainBatch(lock);  // the caller works too
  done_.wait(lock, [this] {
    return batch_.running == 0 && batch_.next >= batch_.jobs;
  });
  batch_.fn = nullptr;
  std::exception_ptr err = batch_.error;
  batch_.error = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace record
