// A small fixed-size worker pool for deterministic fork/join parallelism.
//
// The only entry point is parallelFor(jobs, fn): fn(i) runs once for every
// i in [0, jobs), distributed over the workers plus the calling thread, and
// the call returns only when all jobs finished. Callers are responsible for
// making fn's work deterministic in its *results* (e.g. writing to disjoint
// slots and merging in input order afterwards); the pool guarantees nothing
// about execution order.
//
// parallelFor is safe to call from several threads at once and from inside
// a running job (directly or through nested code that reaches the same
// pool, e.g. sharded soak workers whose compilers use ThreadPool::shared()):
// the pool has a single batch slot, so whichever call finds it busy simply
// runs its jobs inline on the calling thread instead of waiting. Results
// are identical either way; only the parallelism degrades.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace record {

class ThreadPool {
 public:
  /// `threads` worker threads (>= 0; 0 makes parallelFor run inline).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Run fn(0) .. fn(jobs-1) across the workers and the calling thread;
  /// blocks until every job completed. Exceptions thrown by fn are
  /// rethrown (one of them) on the calling thread.
  void parallelFor(int jobs, const std::function<void(int)>& fn);

  /// Process-wide pool with hardware_concurrency()-1 workers, created on
  /// first use.
  static ThreadPool& shared();

 private:
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int jobs = 0;
    int next = 0;      // next job index to claim
    int running = 0;   // jobs currently executing
    std::exception_ptr error;
  };

  void workerLoop();
  /// Claim and run jobs from the current batch until it drains. Returns
  /// when no unclaimed job remains (running jobs may still be in flight).
  void drainBatch(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable wake_;   // workers: a batch is available
  std::condition_variable done_;   // caller: batch fully finished
  Batch batch_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace record
