#include "support/diag.h"

#include <sstream>

namespace record {

std::string SourceLoc::str() const {
  if (!valid()) return file ? std::string(file) : "<unknown>";
  std::ostringstream os;
  if (file) os << file << ":";
  os << line << ":" << col;
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << loc.str() << ": ";
  switch (severity) {
    case Severity::Note: os << "note: "; break;
    case Severity::Warning: os << "warning: "; break;
    case Severity::Error: os << "error: "; break;
  }
  os << message;
  return os.str();
}

void DiagEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Error, loc, std::move(msg)});
  ++errorCount_;
}

void DiagEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

void DiagEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Note, loc, std::move(msg)});
}

std::string DiagEngine::str() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << "\n";
  return os.str();
}

void DiagEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

}  // namespace record
