// A minimal JSON reader/escaper for the observability layer: validating
// Chrome trace_event output, checking that bench stats artifacts parse, and
// escaping strings emitted by the trace sinks. Deliberately tiny -- no DOM
// mutation, no serialization of arbitrary values -- because the repo's JSON
// producers all write their own fixed schemas.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace record::json {

/// A parsed JSON value. Objects keep key order (handy for golden tests).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool isNull() const { return kind == Kind::Null; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }
  bool isArray() const { return kind == Kind::Array; }
  bool isObject() const { return kind == Kind::Object; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parse a complete JSON document (trailing whitespace allowed, nothing
/// else). On failure returns nullopt and, when `err` is non-null, a
/// one-line description with the byte offset.
std::optional<Value> parse(const std::string& text, std::string* err = nullptr);

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string escape(const std::string& s);

}  // namespace record::json
