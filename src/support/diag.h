// Diagnostics: source locations and an error sink shared by all front ends
// (DFL, netlist, ISD, assembler). Collects messages instead of throwing so
// that parsers can recover and report multiple problems per run.
#pragma once

#include <string>
#include <vector>

namespace record {

/// A position in some textual input (1-based; 0 means "unknown").
struct SourceLoc {
  int line = 0;
  int col = 0;
  /// Source/file name, or null when unknown. Non-owning: points into the
  /// DiagEngine that produced it (see DiagEngine::setSourceName).
  const char* file = nullptr;

  bool valid() const { return line > 0; }
  /// "file:line:col" when the source name is known, else "line:col".
  std::string str() const;
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics for one compilation unit.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  bool hasErrors() const { return errorCount_ > 0; }
  int errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one-per-line; empty string when clean.
  std::string str() const;

  void clear();

  /// Name of the compilation unit (file name, test label, ...). Locations
  /// created by front ends point at this storage, so set it before lexing
  /// and keep the engine alive as long as the locations are.
  void setSourceName(std::string name) { sourceName_ = std::move(name); }
  /// Null when no source name was set.
  const char* sourceName() const {
    return sourceName_.empty() ? nullptr : sourceName_.c_str();
  }

 private:
  std::vector<Diagnostic> diags_;
  std::string sourceName_;
  int errorCount_ = 0;
};

}  // namespace record
