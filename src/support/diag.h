// Diagnostics: source locations and an error sink shared by all front ends
// (DFL, netlist, ISD, assembler). Collects messages instead of throwing so
// that parsers can recover and report multiple problems per run.
#pragma once

#include <string>
#include <vector>

namespace record {

/// A position in some textual input (1-based; 0 means "unknown").
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
  std::string str() const;
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics for one compilation unit.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  bool hasErrors() const { return errorCount_ > 0; }
  int errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one-per-line; empty string when clean.
  std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  int errorCount_ = 0;
};

}  // namespace record
