#include "isel/burs.h"

#include <cassert>

namespace record {

BursMatcher::BursMatcher(const RuleSet& rules, CostKind costKind)
    : rules_(rules), costKind_(costKind) {}

bool BursMatcher::matchPattern(const PatNode& pat, const ExprPtr& e,
                               int& cost) {
  switch (pat.kind) {
    case PatNode::Kind::ConstLeaf:
      return e->op == Op::Const && e->value == pat.cval;
    case PatNode::Kind::NtLeaf: {
      const NodeState& st = label(e, *binder_);
      const Choice& c = st.nt[static_cast<int>(pat.nt)];
      if (c.kind == Choice::Kind::None) return false;
      cost += c.cost;
      return true;
    }
    case PatNode::Kind::OpNode: {
      if (e->op != pat.op) return false;
      if (e->kids.size() != pat.kids.size()) return false;
      for (size_t i = 0; i < pat.kids.size(); ++i)
        if (!matchPattern(pat.kids[i], e->kids[i], cost)) return false;
      return true;
    }
  }
  return false;
}

BursMatcher::NodeState& BursMatcher::label(const ExprPtr& e,
                                           OperandBinder& binder) {
  auto it = states_.find(e.get());
  if (it != states_.end()) return it->second;

  // Label children first (post-order).
  for (const auto& k : e->kids) label(k, binder);

  NodeState st;
  // 1. Leaf bindings from the binder (variables, array elements, constants).
  for (Nonterm nt : {Nonterm::Mem, Nonterm::Imm8, Nonterm::Imm16}) {
    if (auto c = binder.leafCost(*e, nt)) {
      Choice& ch = st.nt[static_cast<int>(nt)];
      if (*c < ch.cost) ch = {Choice::Kind::LeafBind, -1, *c};
    }
  }
  // 2. Structural rules.
  for (size_t ri = 0; ri < rules_.rules.size(); ++ri) {
    const Rule& r = rules_.rules[ri];
    if (r.pat.kind != PatNode::Kind::OpNode &&
        r.pat.kind != PatNode::Kind::ConstLeaf)
      continue;  // chain rules handled in closure below
    int cost = ruleCost(r);
    // Pattern leaves always map to strict descendants of `e`, which are
    // already labeled, so matching needs no state for `e` itself.
    if (!matchPattern(r.pat, e, cost)) continue;
    Choice& ch = st.nt[static_cast<int>(r.lhs)];
    if (cost < ch.cost) ch = {Choice::Kind::Rule, static_cast<int>(ri), cost};
  }
  // 3. Chain-rule closure to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ri = 0; ri < rules_.rules.size(); ++ri) {
      const Rule& r = rules_.rules[ri];
      if (r.pat.kind != PatNode::Kind::NtLeaf) continue;
      const Choice& src = st.nt[static_cast<int>(r.pat.nt)];
      if (src.kind == Choice::Kind::None) continue;
      int cost = src.cost + ruleCost(r);
      Choice& dst = st.nt[static_cast<int>(r.lhs)];
      if (cost < dst.cost) {
        dst = {Choice::Kind::Rule, static_cast<int>(ri), cost};
        changed = true;
      }
    }
  }
  return states_.emplace(e.get(), st).first->second;
}

std::optional<int> BursMatcher::matchCost(const ExprPtr& tree, Nonterm goal,
                                          OperandBinder& binder) {
  states_.clear();
  binder_ = &binder;
  const NodeState& st = label(tree, binder);
  const Choice& c = st.nt[static_cast<int>(goal)];
  binder_ = nullptr;
  if (c.kind == Choice::Kind::None) return std::nullopt;
  return c.cost;
}

void BursMatcher::collectLeafBindings(
    const PatNode& pat, const ExprPtr& e,
    std::vector<std::pair<const PatNode*, ExprPtr>>& out) {
  switch (pat.kind) {
    case PatNode::Kind::ConstLeaf:
      return;
    case PatNode::Kind::NtLeaf:
      out.emplace_back(&pat, e);
      return;
    case PatNode::Kind::OpNode:
      for (size_t i = 0; i < pat.kids.size(); ++i)
        collectLeafBindings(pat.kids[i], e->kids[i], out);
      return;
  }
}

Operand BursMatcher::reduceTo(const ExprPtr& e, Nonterm nt,
                              OperandBinder& binder, std::vector<MInstr>& out,
                              int& patterns, bool isStoreDest) {
  const NodeState& st = states_.at(e.get());
  const Choice& c = st.nt[static_cast<int>(nt)];
  assert(c.kind != Choice::Kind::None && "reducing an uncovered node");

  if (c.kind == Choice::Kind::LeafBind)
    return binder.bind(*e, nt, out, isStoreDest);

  const Rule& r = rules_.rules[static_cast<size_t>(c.rule)];
  ++patterns;

  // Gather the rule's leaves paired with the expression nodes they cover.
  std::vector<std::pair<const PatNode*, ExprPtr>> leaves;
  collectLeafBindings(r.pat, e, leaves);

  // Reduce all Mem/Imm leaves first (their results are stable memory or
  // immediate operands), then the Acc leaf. See header comment.
  int maxSlot = -1;
  for (auto& [p, _] : leaves) maxSlot = std::max(maxSlot, p->slot);
  std::vector<Operand> slots(static_cast<size_t>(maxSlot + 1));

  for (auto& [p, sub] : leaves) {
    if (p->nt == Nonterm::Acc) continue;
    // The first child of a Store pattern is the write destination.
    bool dest = r.pat.kind == PatNode::Kind::OpNode &&
                r.pat.op == Op::Store && !r.pat.kids.empty() &&
                p == &r.pat.kids[0];
    Operand o = reduceTo(sub, p->nt, binder, out, patterns, dest);
    if (p->slot >= 0) slots[static_cast<size_t>(p->slot)] = o;
  }
  for (auto& [p, sub] : leaves) {
    if (p->nt != Nonterm::Acc) continue;
    reduceTo(sub, Nonterm::Acc, binder, out, patterns);
  }

  // Emit the rule's instructions.
  Operand result = Operand::none();
  int tempAddr = -1;
  for (const auto& tmpl : r.emit) {
    MInstr mi;
    mi.instr.op = tmpl.op;
    mi.need = r.mode;
    auto materialize = [&](const OperTemplate& ot) -> Operand {
      switch (ot.kind) {
        case OperTemplate::Kind::None:
          return Operand::none();
        case OperTemplate::Kind::Slot:
          return slots.at(static_cast<size_t>(ot.slot));
        case OperTemplate::Kind::FixedImm:
          return Operand::imm(ot.imm);
        case OperTemplate::Kind::Temp:
          if (tempAddr < 0) tempAddr = binder.allocTemp();
          return Operand::direct(tempAddr);
      }
      return Operand::none();
    };
    mi.instr.a = materialize(tmpl.a);
    mi.instr.b = materialize(tmpl.b);
    out.push_back(std::move(mi));
  }

  // The operand representing this node's value as `nt`.
  if (nt == Nonterm::Mem) {
    if (tempAddr >= 0) return Operand::direct(tempAddr);
    // A chain like imm->mem without a temp template would be a grammar bug.
    if (r.isChain() && r.pat.slot >= 0)
      return slots.at(static_cast<size_t>(r.pat.slot));
    return result;
  }
  if ((nt == Nonterm::Imm8 || nt == Nonterm::Imm16) && r.isChain() &&
      r.pat.slot >= 0)
    return slots.at(static_cast<size_t>(r.pat.slot));
  return result;
}

CoverResult BursMatcher::reduce(const ExprPtr& tree, Nonterm goal,
                                OperandBinder& binder) {
  CoverResult res;
  states_.clear();
  binder_ = &binder;
  const NodeState& st = label(tree, binder);
  const Choice& c = st.nt[static_cast<int>(goal)];
  if (c.kind == Choice::Kind::None) {
    binder_ = nullptr;
    return res;
  }
  res.cost = c.cost;
  reduceTo(tree, goal, binder, res.code, res.patternsUsed);
  binder_ = nullptr;
  res.ok = true;
  return res;
}

}  // namespace record
