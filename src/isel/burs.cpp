#include "isel/burs.h"

#include <algorithm>
#include <cassert>

#include "trace/trace.h"

namespace record {

namespace {

int patternDepth(const PatNode& p) {
  if (p.kind != PatNode::Kind::OpNode) return 0;
  int d = 0;
  for (const auto& k : p.kids) d = std::max(d, patternDepth(k));
  return d + 1;
}

}  // namespace

BursMatcher::BursMatcher(const RuleSet& rules, CostKind costKind)
    : rules_(rules), costKind_(costKind) {
  // The kid-sum lower bound used for branch-and-bound assumes a pattern
  // rooted at a node reaches at most its grandchildren (every deeper node
  // is then covered through its own labeled cost). Rule sets with deeper
  // patterns simply run unbounded.
  int maxDepth = 0;
  for (const auto& r : rules_.rules)
    maxDepth = std::max(maxDepth, patternDepth(r.pat));
  boundable_ = maxDepth <= 2;

  rulesByOp_.resize(static_cast<size_t>(Op::Store) + 1);
  for (size_t ri = 0; ri < rules_.rules.size(); ++ri) {
    const PatNode& p = rules_.rules[ri].pat;
    if (p.kind == PatNode::Kind::NtLeaf)
      chainRules_.push_back(static_cast<int>(ri));
    else if (p.kind == PatNode::Kind::OpNode)
      rulesByOp_[static_cast<size_t>(p.op)].push_back(static_cast<int>(ri));
    else  // ConstLeaf patterns only ever match Const nodes
      rulesByOp_[static_cast<size_t>(Op::Const)].push_back(
          static_cast<int>(ri));
  }
}

void BursMatcher::setTrace(TraceContext* trace, const std::string* loc) {
  trace_ = trace;
  traceLoc_ = loc;
  rulesFired_ = trace ? trace->counter("isel.rules_fired") : nullptr;
}

void BursMatcher::enableMemo(bool on) {
  memo_ = on;
  states_.clear();
  memoSig_ = ~0ull;
}

void BursMatcher::beginLabeling(OperandBinder& binder) {
  if (memo_) {
    uint64_t sig = binder.stateSignature();
    if (sig != memoSig_) {
      states_.clear();
      memoSig_ = sig;
    }
  } else {
    states_.clear();
  }
}

int BursMatcher::subtreeMin(const Expr* e) const {
  // Constant nodes can be absorbed by ConstLeaf pattern positions at no
  // cost, so they never contribute to a lower bound.
  if (e->op == Op::Const) return 0;
  const NodeState& st = states_.at(e);
  int best = kInfCost;
  for (const Choice& c : st.nt)
    if (c.kind != Choice::Kind::None) best = std::min(best, c.cost);
  return best;
}

bool BursMatcher::matchPattern(const PatNode& pat, const ExprPtr& e,
                               int& cost) {
  switch (pat.kind) {
    case PatNode::Kind::ConstLeaf:
      return e->op == Op::Const && e->value == pat.cval;
    case PatNode::Kind::NtLeaf: {
      // Pattern leaves are strict descendants of the node being labeled,
      // already labeled by the post-order walk -- this lookup cannot abort.
      const NodeState* st = label(e, *binder_);
      if (!st) return false;
      const Choice& c = st->nt[static_cast<int>(pat.nt)];
      if (c.kind == Choice::Kind::None) return false;
      cost += c.cost;
      return true;
    }
    case PatNode::Kind::OpNode: {
      if (e->op != pat.op) return false;
      if (e->kids.size() != pat.kids.size()) return false;
      for (size_t i = 0; i < pat.kids.size(); ++i)
        if (!matchPattern(pat.kids[i], e->kids[i], cost)) return false;
      return true;
    }
  }
  return false;
}

BursMatcher::NodeState* BursMatcher::label(const ExprPtr& e,
                                           OperandBinder& binder) {
  auto it = states_.find(e.get());
  if (it != states_.end()) {
    if (memo_) ++memoHits_;
    return &it->second;
  }
  if (memo_) ++memoMisses_;

  NodeState st;
  // 1. Leaf bindings from the binder (variables, array elements, constants).
  //    Queried before the kids: a leaf-bindable node admits covers that
  //    leave its subtree uncovered, which disables the kid-sum bound below.
  bool leafBindable = false;
  for (Nonterm nt : {Nonterm::Mem, Nonterm::Imm8, Nonterm::Imm16}) {
    if (auto c = binder.leafCost(*e, nt)) {
      Choice& ch = st.nt[static_cast<int>(nt)];
      if (*c < ch.cost) ch = {Choice::Kind::LeafBind, -1, *c};
      leafBindable = true;
    }
  }

  // Label children (post-order), accumulating a lower bound on this
  // subtree's cover cost: each kid is either a pattern leaf of some rule
  // (costing at least its own cheapest cover) or an interior node of a
  // rule rooted here (costing at least the sum of its kids' cheapest
  // covers, since pattern depth <= 2 makes the grandkids pattern leaves).
  const bool bound = limit_ < kInfCost && !leafBindable;
  int partial = 0;
  for (const auto& k : e->kids) {
    if (!label(k, binder)) return nullptr;  // abort propagates up
    if (!bound) continue;
    int lb = subtreeMin(k.get());
    if (!k->kids.empty()) {
      int interior = 0;
      for (const auto& g : k->kids)
        interior = std::min(kInfCost, interior + subtreeMin(g.get()));
      lb = std::min(lb, interior);
    }
    partial += lb;
    if (partial > limit_) return nullptr;  // branch-and-bound prune
  }
  // 2. Structural rules. The memoized path iterates only the root-op bucket
  //    (same rules, same ascending order as the full scan -- see header).
  auto tryStructural = [&](size_t ri) {
    const Rule& r = rules_.rules[ri];
    int cost = ruleCost(r);
    // Pattern leaves always map to strict descendants of `e`, which are
    // already labeled, so matching needs no state for `e` itself.
    if (!matchPattern(r.pat, e, cost)) return;
    Choice& ch = st.nt[static_cast<int>(r.lhs)];
    if (cost < ch.cost) ch = {Choice::Kind::Rule, static_cast<int>(ri), cost};
  };
  if (memo_) {
    for (int ri : rulesByOp_[static_cast<size_t>(e->op)])
      tryStructural(static_cast<size_t>(ri));
  } else {
    for (size_t ri = 0; ri < rules_.rules.size(); ++ri) {
      if (rules_.rules[ri].pat.kind == PatNode::Kind::NtLeaf)
        continue;  // chain rules handled in closure below
      tryStructural(ri);
    }
  }
  // 3. Chain-rule closure to fixpoint.
  auto closeChains = [&](auto&& forEachChain) {
    bool changed = true;
    while (changed) {
      changed = false;
      forEachChain([&](size_t ri) {
        const Rule& r = rules_.rules[ri];
        const Choice& src = st.nt[static_cast<int>(r.pat.nt)];
        if (src.kind == Choice::Kind::None) return;
        int cost = src.cost + ruleCost(r);
        Choice& dst = st.nt[static_cast<int>(r.lhs)];
        if (cost < dst.cost) {
          dst = {Choice::Kind::Rule, static_cast<int>(ri), cost};
          changed = true;
        }
      });
    }
  };
  if (memo_) {
    closeChains([&](auto&& apply) {
      for (int ri : chainRules_) apply(static_cast<size_t>(ri));
    });
  } else {
    closeChains([&](auto&& apply) {
      for (size_t ri = 0; ri < rules_.rules.size(); ++ri)
        if (rules_.rules[ri].pat.kind == PatNode::Kind::NtLeaf) apply(ri);
    });
  }
  return &states_.emplace(e.get(), st).first->second;
}

std::optional<int> BursMatcher::matchCost(const ExprPtr& tree, Nonterm goal,
                                          OperandBinder& binder) {
  return matchCostBounded(tree, goal, binder, kInfCost).cost;
}

MatchOutcome BursMatcher::matchCostBounded(const ExprPtr& tree, Nonterm goal,
                                           OperandBinder& binder, int limit) {
  beginLabeling(binder);
  binder_ = &binder;
  limit_ = boundable_ ? limit : kInfCost;
  const NodeState* st = label(tree, binder);
  limit_ = kInfCost;
  binder_ = nullptr;
  if (!st) return {std::nullopt, true};
  const Choice& c = st->nt[static_cast<int>(goal)];
  if (c.kind == Choice::Kind::None) return {std::nullopt, false};
  return {c.cost, false};
}

void BursMatcher::collectLeafBindings(
    const PatNode& pat, const ExprPtr& e,
    std::vector<std::pair<const PatNode*, ExprPtr>>& out) {
  switch (pat.kind) {
    case PatNode::Kind::ConstLeaf:
      return;
    case PatNode::Kind::NtLeaf:
      out.emplace_back(&pat, e);
      return;
    case PatNode::Kind::OpNode:
      for (size_t i = 0; i < pat.kids.size(); ++i)
        collectLeafBindings(pat.kids[i], e->kids[i], out);
      return;
  }
}

Operand BursMatcher::reduceTo(const ExprPtr& e, Nonterm nt,
                              OperandBinder& binder, std::vector<MInstr>& out,
                              int& patterns, bool isStoreDest) {
  const NodeState& st = states_.at(e.get());
  const Choice& c = st.nt[static_cast<int>(nt)];
  assert(c.kind != Choice::Kind::None && "reducing an uncovered node");

  if (c.kind == Choice::Kind::LeafBind)
    return binder.bind(*e, nt, out, isStoreDest);

  const Rule& r = rules_.rules[static_cast<size_t>(c.rule)];
  ++patterns;
  if (trace_) {
    rulesFired_->add(1);
    std::string node = e->str();
    if (node.size() > 48) node.replace(45, node.size() - 45, "...");
    trace_->remark("isel.rule", "fired '" + r.name + "' on " + node,
                   traceLoc_ ? *traceLoc_ : std::string());
  }

  // Gather the rule's leaves paired with the expression nodes they cover.
  std::vector<std::pair<const PatNode*, ExprPtr>> leaves;
  collectLeafBindings(r.pat, e, leaves);

  // Reduce all Mem/Imm leaves first (their results are stable memory or
  // immediate operands), then the Acc leaf. See header comment.
  int maxSlot = -1;
  for (auto& [p, _] : leaves) maxSlot = std::max(maxSlot, p->slot);
  std::vector<Operand> slots(static_cast<size_t>(maxSlot + 1));

  for (auto& [p, sub] : leaves) {
    if (p->nt == Nonterm::Acc) continue;
    // The first child of a Store pattern is the write destination.
    bool dest = r.pat.kind == PatNode::Kind::OpNode &&
                r.pat.op == Op::Store && !r.pat.kids.empty() &&
                p == &r.pat.kids[0];
    Operand o = reduceTo(sub, p->nt, binder, out, patterns, dest);
    if (p->slot >= 0) slots[static_cast<size_t>(p->slot)] = o;
  }
  for (auto& [p, sub] : leaves) {
    if (p->nt != Nonterm::Acc) continue;
    reduceTo(sub, Nonterm::Acc, binder, out, patterns);
  }

  // Emit the rule's instructions.
  Operand result = Operand::none();
  int tempAddr = -1;
  for (const auto& tmpl : r.emit) {
    MInstr mi;
    mi.instr.op = tmpl.op;
    mi.need = r.mode;
    auto materialize = [&](const OperTemplate& ot) -> Operand {
      switch (ot.kind) {
        case OperTemplate::Kind::None:
          return Operand::none();
        case OperTemplate::Kind::Slot:
          return slots.at(static_cast<size_t>(ot.slot));
        case OperTemplate::Kind::FixedImm:
          return Operand::imm(ot.imm);
        case OperTemplate::Kind::Temp:
          if (tempAddr < 0) tempAddr = binder.allocTemp();
          return Operand::direct(tempAddr);
      }
      return Operand::none();
    };
    mi.instr.a = materialize(tmpl.a);
    mi.instr.b = materialize(tmpl.b);
    out.push_back(std::move(mi));
  }

  // The operand representing this node's value as `nt`.
  if (nt == Nonterm::Mem) {
    if (tempAddr >= 0) return Operand::direct(tempAddr);
    // A chain like imm->mem without a temp template would be a grammar bug.
    if (r.isChain() && r.pat.slot >= 0)
      return slots.at(static_cast<size_t>(r.pat.slot));
    return result;
  }
  if ((nt == Nonterm::Imm8 || nt == Nonterm::Imm16) && r.isChain() &&
      r.pat.slot >= 0)
    return slots.at(static_cast<size_t>(r.pat.slot));
  return result;
}

CoverResult BursMatcher::reduce(const ExprPtr& tree, Nonterm goal,
                                OperandBinder& binder) {
  CoverResult res;
  beginLabeling(binder);
  binder_ = &binder;
  const NodeState* stp = label(tree, binder);
  assert(stp && "unbounded labeling cannot abort");
  const NodeState& st = *stp;
  const Choice& c = st.nt[static_cast<int>(goal)];
  if (c.kind == Choice::Kind::None) {
    binder_ = nullptr;
    return res;
  }
  res.cost = c.cost;
  reduceTo(tree, goal, binder, res.code, res.patternsUsed);
  binder_ = nullptr;
  res.ok = true;
  return res;
}

}  // namespace record
