// BURS-style instruction selection (Aho/Ganapathi/Tjiang dynamic programming
// over tree grammars, as popularized by iburg -- §4.3.3 of the paper).
//
// The matcher labels every node of a data-flow tree with the cheapest cost of
// producing each nonterminal (storage class), then the reducer walks the
// chosen cover emitting instructions. "Data routing" through the single
// accumulator falls out of the chain rules: `mem <- acc` spills through a
// fresh memory temp, `acc <- mem` reloads.
//
// Evaluation-order discipline (which makes covers with a single ACC/T/P
// always schedulable): for every matched rule, all Mem/Imm pattern leaves
// are reduced *before* the Acc leaf, and the rule's own instructions are
// emitted last. Mem-leaf reductions may freely clobber ACC because their
// results land in memory temps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"
#include "target/isd.h"

namespace record {

class TraceContext;
struct TraceCounter;

/// Cost dimension optimized by the matcher. Table 1 reports size, so Size is
/// the default; Cycles is used by the speed-oriented experiments.
enum class CostKind : uint8_t { Size, Cycles };

/// An instruction plus its mode-bit requirements (resolved later by the
/// mode-change minimization pass).
struct MInstr {
  Instr instr;
  ModeReq need;
};

/// Supplies target-memory knowledge to the selector: how program leaves
/// (variables, array elements, constants) map to operands, and where
/// spill temps live. Implemented by the codegen driver.
class OperandBinder {
 public:
  virtual ~OperandBinder() = default;

  /// Extra cost (in the matcher's cost unit) of binding leaf `e` as `nt`,
  /// or nullopt if impossible. Must be consistent with bind().
  virtual std::optional<int> leafCost(const Expr& e, Nonterm nt) = 0;

  /// Produce the operand for a leaf; may emit setup code (e.g. AR loads for
  /// dynamically indexed arrays). `isStoreDest` is true when the operand is
  /// the destination of a Store pattern (the value will be written, not
  /// read, so dynamic accesses must yield a live indirect operand).
  virtual Operand bind(const Expr& e, Nonterm nt, std::vector<MInstr>& out,
                       bool isStoreDest) = 0;

  /// Allocate / release a one-word spill temp in data memory.
  virtual int allocTemp() = 0;
  virtual void freeTemp(int /*addr*/) {}

  /// Version stamp of everything leafCost() depends on. The label memo is
  /// valid only while this value is unchanged; binders must bump it on any
  /// state change that can alter a leafCost() answer.
  virtual uint64_t stateSignature() const { return 0; }
};

struct CoverResult {
  bool ok = false;
  int cost = 0;
  std::vector<MInstr> code;
  /// Number of rule applications in the cover (pattern count of Fig. 5).
  int patternsUsed = 0;
};

/// Result of a bounded matchCost: `pruned` means labeling was abandoned
/// because a sound lower bound already exceeded the caller's limit -- the
/// true cost is strictly greater than the limit, but unknown.
struct MatchOutcome {
  std::optional<int> cost;
  bool pruned = false;
};

class BursMatcher {
 public:
  BursMatcher(const RuleSet& rules, CostKind costKind);

  /// Cost of covering `tree` to `goal`, or nullopt if no cover exists.
  /// Labels only -- cheap enough to call on every rewrite variant.
  std::optional<int> matchCost(const ExprPtr& tree, Nonterm goal,
                               OperandBinder& binder);

  /// Branch-and-bound matchCost: give up as soon as a lower bound on the
  /// cover cost exceeds `limit` (e.g. the best complete cover found so
  /// far). Bounding is only applied when the rule set's pattern shapes
  /// admit a sound bound (pattern depth <= 2); otherwise this is exactly
  /// matchCost.
  MatchOutcome matchCostBounded(const ExprPtr& tree, Nonterm goal,
                                OperandBinder& binder, int limit);

  /// Full selection: label then reduce, emitting code.
  CoverResult reduce(const ExprPtr& tree, Nonterm goal, OperandBinder& binder);

  /// Keep node labels across matchCost/reduce calls, keyed on node identity
  /// and the binder's stateSignature(). Only sound when callers guarantee
  /// expression nodes outlive the memo (e.g. trees held by an
  /// ExprInterner); the memo is dropped whenever the signature changes.
  void enableMemo(bool on);

  int64_t memoHits() const { return memoHits_; }
  int64_t memoMisses() const { return memoMisses_; }

  /// Attach an optimization-remark stream: every reduce() afterwards
  /// reports each rule fired in the winning cover ("isel.rule" remarks)
  /// and bumps the "isel.rules_fired" counter. `loc` (may be null) points
  /// at a caller-owned rendered source attribution, read at remark time.
  /// Observability only -- never changes labeling or reduction.
  void setTrace(TraceContext* trace, const std::string* loc = nullptr);

  const RuleSet& rules() const { return rules_; }

 private:
  struct Choice {
    enum class Kind : uint8_t { None, LeafBind, Rule } kind = Kind::None;
    int rule = -1;
    int cost = kInfCost;
  };
  struct NodeState {
    Choice nt[kNumNonterms];
  };
  static constexpr int kInfCost = 1 << 28;

  int ruleCost(const Rule& r) const {
    return costKind_ == CostKind::Size ? r.size : r.cycles;
  }

  /// Structural match of `pat` against `e`; accumulates the cost of all
  /// nonterminal leaves (looked up in the label map) into `cost`. Returns
  /// false when ops/consts mismatch or a leaf has no cover.
  bool matchPattern(const PatNode& pat, const ExprPtr& e, int& cost);

  /// Post-order labeling with branch-and-bound: returns nullptr when the
  /// running lower bound exceeded limit_ (only possible when bounding is
  /// active). Completed node states are always correct and reusable.
  NodeState* label(const ExprPtr& e, OperandBinder& binder);

  /// Reset or revalidate the label map for a new match/reduce call.
  void beginLabeling(OperandBinder& binder);

  /// Cheapest cost of covering the subtree at `e` to any nonterminal
  /// (kInfCost when uncoverable). Requires `e` labeled.
  int subtreeMin(const Expr* e) const;

  /// Reduce `e` to `nt`; returns the operand carrying the value for
  /// Mem/Imm nonterms (unused for Acc/Stmt).
  Operand reduceTo(const ExprPtr& e, Nonterm nt, OperandBinder& binder,
                   std::vector<MInstr>& out, int& patterns,
                   bool isStoreDest = false);

  /// Collect (patternLeaf, exprNode) pairs of a structural rule match.
  void collectLeafBindings(
      const PatNode& pat, const ExprPtr& e,
      std::vector<std::pair<const PatNode*, ExprPtr>>& out);

  const RuleSet& rules_;
  CostKind costKind_;
  // Rule indexes for the memoized fast path: structural rules bucketed by
  // root op (ConstLeaf rules land in the Const bucket) plus the chain-rule
  // list. Buckets hold ascending rule indices, so iterating one visits
  // exactly the rules the full scan could have matched, in the same order
  // -- the label tables are identical. The flags-off path keeps the
  // straightforward full scan as the reference implementation.
  std::vector<std::vector<int>> rulesByOp_;
  std::vector<int> chainRules_;
  std::unordered_map<const Expr*, NodeState> states_;
  OperandBinder* binder_ = nullptr;  // valid during a match/reduce call

  // Label memo (states_ kept across calls while the binder signature holds).
  bool memo_ = false;
  uint64_t memoSig_ = ~0ull;
  int64_t memoHits_ = 0;
  int64_t memoMisses_ = 0;

  // Optimization-remark stream (null = off).
  TraceContext* trace_ = nullptr;
  TraceCounter* rulesFired_ = nullptr;
  const std::string* traceLoc_ = nullptr;

  // Branch-and-bound state for the current bounded call.
  int limit_ = kInfCost;
  /// Sound kid-sum lower bounds need every structural pattern to reach at
  /// most grandchild depth (true for the tdsp grammar); deeper rule sets
  /// disable bounding.
  bool boundable_ = false;
};

}  // namespace record
