// recordc -- a command-line driver for the retargetable compiler: the tool a
// downstream user would actually run.
//
//   recordc [options] file.dfl
//   recordc --kernel fir              (compile a built-in DSPStone kernel)
//
// Options:
//   --baseline            use the target-specific baseline configuration
//   --naive               use the deliberately naive configuration
//   --cycles              optimize for cycles instead of size
//   --no-rewrite          disable algebraic tree rewriting
//   --rewrite-budget N    variants tried per statement (default 48)
//   --ars N               number of address registers (1..8)
//   --no-mac              core without multiplier datapath
//   --dual-mul            dual-operand multiplier + 2 memory banks
//   --no-sat --no-rpt --no-dmov      strip core features
//   --emit-isd            print the core's instruction-set description
//   --emit-desc           print the full target description (insn clauses
//                         + feature-gated rules, src/isd/gen.h grammar) --
//                         the checked-in src/target/tdsp.isd is this output
//   --isd FILE            retarget: compile against an ISD text file.
//   --isd=FILE            Plain rule files swap the BURS rules only; a
//                         full target description (starting with a
//                         `target`/`insn` clause) additionally generates
//                         and installs the ISA/decode tables, so the
//                         assembler, encoder and simulator cycle hints all
//                         come from the description
//   --run                 execute on the simulator with zero inputs
//   --src                 annotate the listing with DFL source lines
//   --profile[=FILE]      execute under the cycle profiler (implies --run)
//                         and print a hot-spot report; with FILE, also
//                         write the flat profile stats JSON there
//   --profile-trace=FILE  write a Chrome trace_event timeline of the
//                         profiled execution to FILE (implies --profile)
//   --stats               print compilation statistics (incl. counters)
//   --server-stats[=N]    compile through an in-process CompileService,
//                         submitting the request N times (default 4): the
//                         first compiles, the rest hit the content-
//                         addressed cache. Prints the server.* counters
//                         (requests/hits/misses/evictions) and per-request
//                         latency; with --trace the counters also appear
//                         in the pass-trace report
//   --metrics[=FILE]      dump the compile service's metrics registry
//                         (counters, gauges, per-phase latency histograms
//                         split by outcome) as nested JSON; implies
//                         --server-stats. With no FILE the JSON goes to
//                         stdout and the listing is suppressed (pipe into
//                         jq)
//   --prom[=FILE]         same registry as Prometheus text exposition
//   --slow-trace=FILE     capture every service request's per-phase spans
//                         and write them as Chrome trace JSON (validated);
//                         implies --server-stats
//   --request-log=FILE    append one JSON line per service request (id,
//                         key, outcome, per-phase ms); implies
//                         --server-stats
//   --trace               print the pass trace (timers, counters, remarks)
//                         to stderr
//   --trace-json[=FILE]   write a Chrome trace_event JSON trace to FILE;
//                         with no FILE, the trace goes to stdout and the
//                         listing is suppressed (pipe into jq / save for
//                         chrome://tracing or Perfetto)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "dspstone/kernels.h"
#include "isd/gen.h"
#include "server/compileservice.h"
#include "sim/machine.h"
#include "sim/profile.h"
#include "target/tdsp.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace record;
  TargetConfig cfg;
  CodegenOptions opt = recordOptions();
  std::string file, kernel, isdFile;
  bool run = false, stats = false, emitIsd = false, emitDesc = false;
  bool srcListing = false;
  bool traceText = false, traceJson = false, profile = false;
  int serverRepeat = 0;  // > 0: route through CompileService, N submissions
  bool metricsOut = false, promOut = false;
  std::string traceJsonFile, profileStatsFile, profileTraceFile;
  std::string metricsFile, promFile, slowTraceFile, requestLogFile;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto intArg = [&](int def) {
      return i + 1 < argc ? std::atoi(argv[++i]) : def;
    };
    if (a == "--baseline") opt = baselineOptions();
    else if (a == "--naive") opt = naiveOptions();
    else if (a == "--cycles") opt.cost = CostKind::Cycles;
    else if (a == "--no-rewrite") opt.rewriteBudget = 1;
    else if (a == "--rewrite-budget") opt.rewriteBudget = intArg(48);
    else if (a == "--ars") cfg.numAddrRegs = intArg(8);
    else if (a == "--no-mac") cfg.hasMac = false;
    else if (a == "--dual-mul") { cfg.hasDualMul = true; cfg.memBanks = 2; }
    else if (a == "--no-sat") cfg.hasSat = false;
    else if (a == "--no-rpt") cfg.hasRpt = false;
    else if (a == "--no-dmov") cfg.hasDmov = false;
    else if (a == "--run") run = true;
    else if (a == "--src") srcListing = true;
    else if (a == "--profile") { profile = true; run = true; }
    else if (a.rfind("--profile=", 0) == 0) {
      profile = true;
      run = true;
      profileStatsFile = a.substr(std::strlen("--profile="));
    }
    else if (a.rfind("--profile-trace=", 0) == 0) {
      profile = true;
      run = true;
      profileTraceFile = a.substr(std::strlen("--profile-trace="));
    }
    else if (a == "--stats") stats = true;
    else if (a == "--server-stats") serverRepeat = 4;
    else if (a.rfind("--server-stats=", 0) == 0)
      serverRepeat = std::atoi(a.c_str() + std::strlen("--server-stats="));
    else if (a == "--metrics") metricsOut = true;
    else if (a.rfind("--metrics=", 0) == 0) {
      metricsOut = true;
      metricsFile = a.substr(std::strlen("--metrics="));
    }
    else if (a == "--prom") promOut = true;
    else if (a.rfind("--prom=", 0) == 0) {
      promOut = true;
      promFile = a.substr(std::strlen("--prom="));
    }
    else if (a.rfind("--slow-trace=", 0) == 0)
      slowTraceFile = a.substr(std::strlen("--slow-trace="));
    else if (a.rfind("--request-log=", 0) == 0)
      requestLogFile = a.substr(std::strlen("--request-log="));
    else if (a == "--trace") traceText = true;
    else if (a == "--trace-json") traceJson = true;
    else if (a.rfind("--trace-json=", 0) == 0) {
      traceJson = true;
      traceJsonFile = a.substr(std::strlen("--trace-json="));
    }
    else if (a == "--emit-isd") emitIsd = true;
    else if (a == "--emit-desc") emitDesc = true;
    else if (a == "--isd") isdFile = i + 1 < argc ? argv[++i] : "";
    else if (a.rfind("--isd=", 0) == 0)
      isdFile = a.substr(std::strlen("--isd="));
    else if (a == "--kernel") kernel = i + 1 < argc ? argv[++i] : "";
    else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    } else {
      file = a;
    }
  }

  if (emitIsd) {
    std::printf("%s", buildTdspRules(cfg).str().c_str());
    return 0;
  }
  if (emitDesc) {
    std::printf("%s", isdgen::deriveTdspDesc().str().c_str());
    return 0;
  }

  std::string source;
  if (!kernel.empty()) {
    try {
      source = kernelByName(kernel).dfl;
    } catch (const std::exception&) {
      std::fprintf(stderr, "unknown kernel '%s'; available:", kernel.c_str());
      for (const auto& k : dspstoneKernels())
        std::fprintf(stderr, " %s", k.name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  } else if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::fprintf(stderr,
                 "usage: recordc [options] file.dfl | --kernel NAME\n");
    return 2;
  }

  DiagEngine diag;
  auto prog = dfl::parseDfl(source, diag);
  if (!prog) {
    std::fprintf(stderr, "%s", diag.str().c_str());
    return 1;
  }

  TraceContext trace;
  if (traceText || traceJson) opt.trace = &trace;

  // Telemetry exports observe the compile service, so they imply it.
  if ((metricsOut || promOut || !slowTraceFile.empty() ||
       !requestLogFile.empty()) &&
      serverRepeat == 0)
    serverRepeat = 4;

  if (serverRepeat != 0) {
    if (!isdFile.empty()) {
      std::fprintf(stderr,
                   "--server-stats does not support --isd (the service "
                   "compiles against built-in rule sets)\n");
      return 2;
    }
    if (serverRepeat < 1) serverRepeat = 1;
    server::ServiceOptions so;
    so.trace = &trace;  // server.* counters land in the pass trace
    if (!slowTraceFile.empty()) so.slowRequestMs = 0;  // capture everything
    so.requestLogPath = requestLogFile;
    server::CompileService svc(so);
    std::shared_ptr<const TargetProgram> compiled;
    std::ostringstream requestLines;
    std::string error;
    for (int n = 0; n < serverRepeat; ++n) {
      server::CompileResponse resp = svc.compileSync({source, cfg, opt});
      if (!resp.ok()) {
        error = resp.error;
        break;
      }
      if (!compiled) compiled = resp.prog;
      char line[160];
      std::snprintf(line, sizeof line,
                    "; request %d: %-9s %8.3f ms  (key %016llx)\n", n + 1,
                    resp.cacheHit ? "cache-hit"
                                  : (resp.coalesced ? "coalesced" : "compiled"),
                    resp.msLatency, (unsigned long long)resp.key);
      requestLines << line;
    }
    if (!error.empty()) {
      std::fprintf(stderr, "compilation failed: %s\n", error.c_str());
      if (traceText) std::fprintf(stderr, "%s", trace.text().c_str());
      return 1;
    }
    // --metrics / --prom with no file stream the export to stdout (for
    // jq / scrapers); the listing would corrupt it, so it is suppressed.
    const bool exportToStdout = (metricsOut && metricsFile.empty()) ||
                                (promOut && promFile.empty());
    if (!exportToStdout) {
      std::printf("%s", compiled->listing(srcListing).c_str());
      server::ServiceStats ss = svc.stats();
      std::printf(
          "; server: %lld requests, %lld cache hits, %lld coalesced, "
          "%lld compiled, %lld evictions, %lld cached entries (%lld bytes)\n",
          (long long)ss.requests, (long long)ss.cacheHits,
          (long long)ss.coalesced, (long long)ss.misses,
          (long long)ss.evictions, (long long)ss.cacheEntries,
          (long long)ss.cacheBytes);
      std::printf("%s", requestLines.str().c_str());
    }
    if (metricsOut) {
      std::string json = svc.metricsJson();
      if (metricsFile.empty()) {
        std::printf("%s\n", json.c_str());
      } else {
        std::ofstream out(metricsFile);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", metricsFile.c_str());
          return 2;
        }
        out << json << "\n";
      }
    }
    if (promOut) {
      std::string text = svc.prometheusText();
      if (promFile.empty()) {
        std::printf("%s", text.c_str());
      } else {
        std::ofstream out(promFile);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", promFile.c_str());
          return 2;
        }
        out << text;
      }
    }
    if (!slowTraceFile.empty()) {
      std::string json = svc.slowTraceJson();
      std::string verr;
      if (!validateChromeTrace(json, &verr)) {
        std::fprintf(stderr, "internal error: bad slow-request trace: %s\n",
                     verr.c_str());
        return 2;
      }
      std::ofstream out(slowTraceFile);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", slowTraceFile.c_str());
        return 2;
      }
      out << json;
    }
    if (traceText) std::fprintf(stderr, "%s", trace.text().c_str());
    return 0;
  }

  try {
    std::optional<RecordCompiler> compilerStorage;
    // Outlives the compile + run: the simulator's decode reads the active
    // ISA table, so a table generated from a full description must stay
    // alive (and installed) until the end of main.
    std::optional<IsaTable> generatedTable;
    if (!isdFile.empty()) {
      std::ifstream in(isdFile);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", isdFile.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string isdText = ss.str();
      DiagEngine isdDiag;
      isdDiag.setSourceName(isdFile);
      // A full target description declares itself with a `target` or
      // `insn` clause; a plain rule file starts straight at `rule`.
      const bool fullDesc = isdText.find("target ") != std::string::npos ||
                            isdText.find("insn ") != std::string::npos;
      if (fullDesc) {
        auto desc = isdgen::parseTargetDesc(isdText, isdDiag);
        if (!desc || !isdgen::validateDesc(*desc, isdDiag)) {
          std::fprintf(stderr, "%s", isdDiag.str().c_str());
          return 1;
        }
        auto table = isdgen::buildIsaTable(*desc, isdDiag);
        if (!table) {
          std::fprintf(stderr, "%s", isdDiag.str().c_str());
          return 1;
        }
        generatedTable = std::move(*table);
        setActiveIsaTable(&*generatedTable);
        compilerStorage.emplace(isdgen::rulesFor(*desc, cfg), opt);
      } else {
        auto rules = parseIsd(isdText, isdDiag);
        if (!rules) {
          std::fprintf(stderr, "%s", isdDiag.str().c_str());
          return 1;
        }
        rules->config = cfg;
        compilerStorage.emplace(std::move(*rules), opt);
      }
    } else {
      compilerStorage.emplace(cfg, opt);
    }
    RecordCompiler& compiler = *compilerStorage;
    auto res = compiler.compile(*prog);
    // --trace-json with no file streams the JSON to stdout (for jq); the
    // listing would corrupt it, so it is suppressed in that mode.
    const bool jsonToStdout = traceJson && traceJsonFile.empty();
    if (!jsonToStdout)
      std::printf("%s", res.prog.listing(srcListing).c_str());
    if (traceText) std::fprintf(stderr, "%s", trace.text().c_str());
    if (traceJson) {
      std::string json = trace.chromeJson();
      // The schema check is cheap; a malformed trace is a bug worth an
      // exit code, not a silently broken artifact.
      std::string verr;
      if (!validateChromeTrace(json, &verr)) {
        std::fprintf(stderr, "internal error: bad trace JSON: %s\n",
                     verr.c_str());
        return 2;
      }
      if (jsonToStdout) {
        std::printf("%s\n", json.c_str());
      } else {
        std::ofstream out(traceJsonFile);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", traceJsonFile.c_str());
          return 2;
        }
        out << json << "\n";
      }
    }
    if (stats && !jsonToStdout) {
      std::printf(
          "; stats: %d words, %d statements, %d variants tried, %d "
          "patterns,\n;        %d promotions, %d merges, %d mode switches, "
          "%d RPT conversions\n",
          res.stats.sizeWords, res.stats.statements,
          res.stats.variantsTried, res.stats.patternsUsed,
          res.stats.promote.promotions, res.stats.compacted.merges,
          res.stats.modes.switchesInserted,
          res.stats.loops.rptConversions);
      if (traceText || traceJson)
        for (const auto& [name, value] : trace.counterValues())
          std::printf("; counter %-28s %lld\n", name.c_str(),
                      static_cast<long long>(value));
    }
    if (run) {
      Machine m(res.prog);
      std::optional<Profile> prof;
      if (profile) {
        prof.emplace(res.prog);
        m.attachProfile(&*prof);
      }
      auto rr = m.run();
      std::printf("; run: %s%s%s, %lld cycles, %lld instructions\n",
                  runStatusName(rr.status),
                  rr.status == RunStatus::Halted ? "" : ": ",
                  rr.status == RunStatus::Halted ? "" : rr.trapReason.c_str(),
                  static_cast<long long>(rr.cycles),
                  static_cast<long long>(rr.instructions));
      for (const auto& s : prog->symbols.all()) {
        if (s->kind != SymKind::Output) continue;
        if (s->isArray()) continue;
        std::printf(";   %s = %lld\n", s->name.c_str(),
                    static_cast<long long>(m.readSymbol(s->name)));
      }
      if (profile) {
        std::printf("\n%s", prof->text().c_str());
        if (!profileStatsFile.empty()) {
          std::ofstream out(profileStatsFile);
          if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         profileStatsFile.c_str());
            return 2;
          }
          out << prof->statsJson() << "\n";
        }
        if (!profileTraceFile.empty()) {
          std::string json = prof->chromeJson();
          std::string verr;
          if (!validateChromeTrace(json, &verr)) {
            std::fprintf(stderr, "internal error: bad profile trace: %s\n",
                         verr.c_str());
            return 2;
          }
          std::ofstream out(profileTraceFile);
          if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         profileTraceFile.c_str());
            return 2;
          }
          out << json;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compilation failed: %s\n", e.what());
    // The trace still explains how far compilation got (and carries the
    // "reject" remark), so emit it even on failure.
    if (traceText) std::fprintf(stderr, "%s", trace.text().c_str());
    if (traceJson && traceJsonFile.empty())
      std::printf("%s\n", trace.chromeJson().c_str());
    else if (traceJson)
      std::ofstream(traceJsonFile) << trace.chromeJson() << "\n";
    return 1;
  }
  return 0;
}
