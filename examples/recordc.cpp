// recordc -- a command-line driver for the retargetable compiler: the tool a
// downstream user would actually run.
//
//   recordc [options] file.dfl
//   recordc --kernel fir              (compile a built-in DSPStone kernel)
//
// Options:
//   --baseline            use the target-specific baseline configuration
//   --naive               use the deliberately naive configuration
//   --cycles              optimize for cycles instead of size
//   --no-rewrite          disable algebraic tree rewriting
//   --rewrite-budget N    variants tried per statement (default 48)
//   --ars N               number of address registers (1..8)
//   --no-mac              core without multiplier datapath
//   --dual-mul            dual-operand multiplier + 2 memory banks
//   --no-sat --no-rpt --no-dmov      strip core features
//   --emit-isd            print the core's instruction-set description
//   --isd FILE            retarget: compile against an ISD text file
//   --run                 execute on the simulator with zero inputs
//   --stats               print compilation statistics
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "dspstone/kernels.h"
#include "sim/machine.h"
#include "target/tdsp.h"

int main(int argc, char** argv) {
  using namespace record;
  TargetConfig cfg;
  CodegenOptions opt = recordOptions();
  std::string file, kernel, isdFile;
  bool run = false, stats = false, emitIsd = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto intArg = [&](int def) {
      return i + 1 < argc ? std::atoi(argv[++i]) : def;
    };
    if (a == "--baseline") opt = baselineOptions();
    else if (a == "--naive") opt = naiveOptions();
    else if (a == "--cycles") opt.cost = CostKind::Cycles;
    else if (a == "--no-rewrite") opt.rewriteBudget = 1;
    else if (a == "--rewrite-budget") opt.rewriteBudget = intArg(48);
    else if (a == "--ars") cfg.numAddrRegs = intArg(8);
    else if (a == "--no-mac") cfg.hasMac = false;
    else if (a == "--dual-mul") { cfg.hasDualMul = true; cfg.memBanks = 2; }
    else if (a == "--no-sat") cfg.hasSat = false;
    else if (a == "--no-rpt") cfg.hasRpt = false;
    else if (a == "--no-dmov") cfg.hasDmov = false;
    else if (a == "--run") run = true;
    else if (a == "--stats") stats = true;
    else if (a == "--emit-isd") emitIsd = true;
    else if (a == "--isd") isdFile = i + 1 < argc ? argv[++i] : "";
    else if (a == "--kernel") kernel = i + 1 < argc ? argv[++i] : "";
    else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    } else {
      file = a;
    }
  }

  if (emitIsd) {
    std::printf("%s", buildTdspRules(cfg).str().c_str());
    return 0;
  }

  std::string source;
  if (!kernel.empty()) {
    try {
      source = kernelByName(kernel).dfl;
    } catch (const std::exception&) {
      std::fprintf(stderr, "unknown kernel '%s'; available:", kernel.c_str());
      for (const auto& k : dspstoneKernels())
        std::fprintf(stderr, " %s", k.name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  } else if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::fprintf(stderr,
                 "usage: recordc [options] file.dfl | --kernel NAME\n");
    return 2;
  }

  DiagEngine diag;
  auto prog = dfl::parseDfl(source, diag);
  if (!prog) {
    std::fprintf(stderr, "%s", diag.str().c_str());
    return 1;
  }

  try {
    std::optional<RecordCompiler> compilerStorage;
    if (!isdFile.empty()) {
      std::ifstream in(isdFile);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", isdFile.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      DiagEngine isdDiag;
      auto rules = parseIsd(ss.str(), isdDiag);
      if (!rules) {
        std::fprintf(stderr, "%s", isdDiag.str().c_str());
        return 1;
      }
      rules->config = cfg;
      compilerStorage.emplace(std::move(*rules), opt);
    } else {
      compilerStorage.emplace(cfg, opt);
    }
    RecordCompiler& compiler = *compilerStorage;
    auto res = compiler.compile(*prog);
    std::printf("%s", res.prog.listing().c_str());
    if (stats) {
      std::printf(
          "; stats: %d words, %d statements, %d variants tried, %d "
          "patterns,\n;        %d promotions, %d merges, %d mode switches, "
          "%d RPT conversions\n",
          res.stats.sizeWords, res.stats.statements,
          res.stats.variantsTried, res.stats.patternsUsed,
          res.stats.promote.promotions, res.stats.compacted.merges,
          res.stats.modes.switchesInserted,
          res.stats.loops.rptConversions);
    }
    if (run) {
      Machine m(res.prog);
      auto rr = m.run();
      std::printf("; run: %s, %lld cycles, %lld instructions\n",
                  rr.halted ? "halted" : rr.trapReason.c_str(),
                  static_cast<long long>(rr.cycles),
                  static_cast<long long>(rr.instructions));
      for (const auto& s : prog->symbols.all()) {
        if (s->kind != SymKind::Output) continue;
        if (s->isArray()) continue;
        std::printf(";   %s = %lld\n", s->name.c_str(),
                    static_cast<long long>(m.readSymbol(s->name)));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compilation failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
