// DSP-language demo (§3.2 requirement 5: "high-level languages which
// support delayed signals"): a 3-tap FIR written with the DFL delay operator
// x@k, compiled and streamed sample-by-sample through the simulator.
//
//   $ ./examples/delay_line_filter
#include <cstdio>
#include <vector>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "ir/interp.h"
#include "sim/machine.h"

int main() {
  using namespace record;

  // y[t] = 2*x[t] + 3*x[t-1] - x[t-2], expressed with delayed signals.
  const char* source = R"(
    program fir3;
    input x delay 2 : fix;
    output y : fix;
    begin
      y := x*2 + x@1 * 3 - x@2;
    end
  )";
  Program prog = dfl::parseDflOrDie(source);

  TargetConfig cfg;
  RecordCompiler compiler(cfg, recordOptions());
  auto res = compiler.compile(prog);
  std::printf("compiled fir3: %d words\n%s\n", res.stats.sizeWords,
              res.prog.listing().c_str());

  std::vector<int64_t> samples = {4, 0, -2, 7, 1, 1, -5, 3};
  Machine machine(res.prog);
  Interp gold(prog);
  gold.setStream("x", samples);

  std::printf("  t   x[t]   y (sim)   y (golden)\n");
  bool allMatch = true;
  for (size_t t = 0; t < samples.size(); ++t) {
    machine.writeSymbol("x", 0, samples[t]);  // feed the new sample
    machine.run();
    gold.run(1);
    int64_t sim = machine.readSymbol("y");
    int64_t ref = gold.trace("y")[t];
    std::printf("%3zu %6lld %9lld %12lld %s\n", t,
                static_cast<long long>(samples[t]),
                static_cast<long long>(sim), static_cast<long long>(ref),
                sim == ref ? "" : "  <-- MISMATCH");
    allMatch &= (sim == ref);
    machine.reset(false);  // next tick; delay-line state lives in memory
  }
  std::printf(allMatch ? "\nall samples match the golden model\n"
                       : "\nMISMATCH\n");
  return allMatch ? 0 : 1;
}
