// Retargeting demo (§4.2): the same source program and the same compiler,
// pointed at different ASIP variants of the tdsp core by changing only the
// generic parameters -- the hardware/software codesign exploration loop the
// paper motivates.
//
//   $ ./examples/retarget_asip
#include <cstdio>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "dspstone/harness.h"

int main() {
  using namespace record;

  const char* source = R"(
    program mac8;
    const N = 8;
    input x[N] : fix;
    input h[N] : fix;
    output y : fix;
    var acc : fix;
    begin
      acc := 0;
      for i := 0 to N-1 do
        acc := acc + x[i]*h[i];
      endfor
      y := acc;
    end
  )";
  Program prog = dfl::parseDflOrDie(source);

  struct Variant {
    const char* note;
    TargetConfig cfg;
  };
  Variant variants[3];
  variants[0].note = "a full DSP core";
  variants[1].note = "a dual-multiplier, dual-bank ASSP";
  variants[1].cfg.hasDualMul = true;
  variants[1].cfg.memBanks = 2;
  variants[2].note = "a cost-reduced controller core without multiplier";
  variants[2].cfg.hasMac = false;

  for (const auto& v : variants) {
    RecordCompiler compiler(v.cfg, recordOptions());
    auto res = compiler.compile(prog);
    auto m = runAndCompare(res.prog, prog, defaultStimulus(prog, 3, 1));
    std::printf("=== %s: %s ===\n", v.cfg.describe().c_str(), v.note);
    if (!m.ok) {
      std::printf("verification FAILED: %s\n", m.error.c_str());
      return 1;
    }
    std::printf("verified OK; %d words, %lld cycles\n", m.sizeWords,
                static_cast<long long>(m.cycles));
    std::printf("%s\n", res.prog.listing().c_str());
  }
  std::printf(
      "Same compiler, three cores: only the processor description "
      "changed.\n");
  return 0;
}
