// Quickstart: compile a DFL program with the RECORD pipeline, print the
// generated tdsp assembly, execute it on the instruction-set simulator, and
// check the result against the golden-model interpreter.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "ir/interp.h"
#include "sim/machine.h"

int main() {
  using namespace record;

  // 1. A DSP program in the DFL subset: a dot product.
  const char* source = R"(
    program dot;
    const N = 8;
    input x[N] : fix;
    input h[N] : fix;
    output y : fix;
    var acc : fix;
    begin
      acc := 0;
      for i := 0 to N-1 do
        acc := acc + x[i]*h[i];
      endfor
      y := acc;
    end
  )";
  Program prog = dfl::parseDflOrDie(source);
  std::printf("=== source ===\n%s\n", prog.str().c_str());

  // 2. Compile for the default tdsp core with the full RECORD pipeline.
  TargetConfig cfg;
  RecordCompiler compiler(cfg, recordOptions());
  CompileResult res = compiler.compile(prog);
  std::printf("=== generated code (%d words) ===\n%s\n",
              res.stats.sizeWords, res.prog.listing().c_str());

  // 3. Run on the simulator.
  Machine machine(res.prog);
  int64_t xs[] = {1, 2, 3, 4, 5, 6, 7, 8};
  int64_t hs[] = {10, -1, 10, -1, 10, -1, 10, -1};
  for (int i = 0; i < 8; ++i) {
    machine.writeSymbol("x", i, xs[i]);
    machine.writeSymbol("h", i, hs[i]);
  }
  auto run = machine.run();
  std::printf("simulated: y = %lld  (%lld cycles, %lld instructions)\n",
              static_cast<long long>(machine.readSymbol("y")),
              static_cast<long long>(run.cycles),
              static_cast<long long>(run.instructions));

  // 4. Cross-check with the golden-model interpreter.
  Interp gold(prog);
  gold.setArray("x", std::vector<int64_t>(xs, xs + 8));
  gold.setArray("h", std::vector<int64_t>(hs, hs + 8));
  gold.run();
  std::printf("golden:    y = %lld  -> %s\n",
              static_cast<long long>(gold.scalar("y")),
              gold.scalar("y") == machine.readSymbol("y") ? "MATCH"
                                                          : "MISMATCH");
  return gold.scalar("y") == machine.readSymbol("y") ? 0 : 1;
}
