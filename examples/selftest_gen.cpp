// Self-test generation demo (§4.5): derive a self-test program from the
// processor description, show that a healthy core passes it, then injure the
// core's decoder and watch the test catch the fault.
//
//   $ ./examples/selftest_gen
#include <cstdio>

#include "selftest/gen.h"
#include "target/tdsp.h"

int main() {
  using namespace record;
  using namespace record::selftest;

  TargetConfig cfg;
  auto rules = buildTdspRules(cfg);
  auto st = generateSelfTest(rules, 2026);

  std::printf("self-test for %s: %d words, %zu checks, %.0f%% of %zu "
              "instruction rules covered\n\n",
              cfg.describe().c_str(), st.prog.sizeWords(),
              st.checks.size(), 100.0 * st.ruleCoverage(),
              rules.rules.size());

  std::printf("first lines of the generated test program:\n");
  int shown = 0;
  for (const auto& in : st.prog.code) {
    std::printf("    %s\n", in.str().c_str());
    if (++shown >= 12) break;
  }
  std::printf("    ... (%d more words)\n\n",
              st.prog.sizeWords() - shown);

  auto healthy = runSelfTest(st);
  std::printf("healthy core: %s (%d failed checks)\n",
              healthy.pass ? "PASS" : "FAIL", healthy.failedChecks);

  auto faulty = runSelfTest(st, [](Opcode op) {
    return op == Opcode::APAC ? Opcode::SPAC : op;  // broken accumulate
  });
  std::printf("core with APAC->SPAC decode fault: %s (%d failed checks)\n",
              faulty.pass ? "PASS" : "FAIL", faulty.failedChecks);

  auto fc = runFaultCampaign(st);
  std::printf("\nfull decode-fault campaign: %d/%zu faults detected "
              "(%.1f%%)\n",
              fc.detected, fc.faults.size(), 100.0 * fc.coverage());
  return healthy.pass && !faulty.pass ? 0 : 1;
}
