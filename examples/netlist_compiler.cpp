// The full Fig. 2 story in one program: start from an RT-level netlist of a
// small accumulator processor, extract its instruction set (Fig. 3),
// generate a compiler from the extracted description, compile a DFL program
// with it, and execute the result on the RTL simulator -- "closing the gap
// between electronic CAD and compiler generation".
//
//   $ ./examples/netlist_compiler
#include <cstdio>

#include "dfl/frontend.h"
#include "ir/interp.h"
#include "ise/bridge.h"
#include "ise/extract.h"
#include "netlist/parser.h"
#include "target/tdsp.h"

int main() {
  using namespace record;

  // 1. The processor exists only as a netlist.
  TargetConfig cfg;
  std::string netlistText = tdspDatapathNetlist(cfg);
  auto netlist = nl::parseNetlistOrDie(netlistText);
  std::printf("=== RT netlist ===\n%s\n", netlistText.c_str());

  // 2. Instruction-set extraction.
  auto patterns = ise::extractInstructionSet(netlist);
  std::printf("=== extracted instruction set (%zu patterns) ===\n",
              patterns.size());
  for (const auto& p : patterns) std::printf("  %s\n", p.str().c_str());

  // 3. Generate a compiler from the extracted description.
  ise::GeneratedCompiler gc(netlist, patterns);
  std::printf("\n=== %s\n", gc.describe().c_str());
  if (!gc.usable()) {
    std::printf("netlist lacks the capabilities for a compiler\n");
    return 1;
  }

  // 4. Compile a program with the generated compiler.
  auto prog = dfl::parseDflOrDie(R"(
    program demo;
    input a : fix;
    input b : fix;
    input c : fix;
    output y : fix;
    var s : fix;
    begin
      s := 0;
      for i := 1 to 4 do
        s := s + a;
      endfor
      y := (s - b) + (c + 100);
    end
  )");
  std::string err;
  auto gp = gc.compile(prog, &err);
  if (!gp) {
    std::printf("generated compiler failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("=== compiled microcode (%zu words) ===\n",
              gp->words.size());
  for (size_t i = 0; i < gp->words.size(); ++i)
    std::printf("  %04zx: %012llx  %s\n", i,
                static_cast<unsigned long long>(gp->words[i]),
                gp->listing[i].c_str());

  // 5. Execute on the RTL simulator and check against the golden model.
  auto outs = ise::runGenerated(netlist, *gp, {{"a", 9}, {"b", 5}, {"c", 2}},
                                {"y"});
  Interp gold(prog);
  gold.setScalar("a", 9);
  gold.setScalar("b", 5);
  gold.setScalar("c", 2);
  gold.run();
  std::printf("\nRTL simulation: y = %lld, golden model: y = %lld -> %s\n",
              static_cast<long long>(outs.at("y")),
              static_cast<long long>(gold.scalar("y")),
              outs.at("y") == gold.scalar("y") ? "MATCH" : "MISMATCH");
  return outs.at("y") == gold.scalar("y") ? 0 : 1;
}
