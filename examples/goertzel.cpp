// Goertzel tone detection -- a realistic single-frequency DSP workload (the
// DTMF building block) written in the DFL subset with delayed feedback
// signals, compiled with RECORD and streamed sample-by-sample through the
// simulator against the golden model.
//
// The resonator is  s[t] = x[t] + ((c * s[t-1]) >> 13) - s[t-2]
// with c = 2*cos(2*pi*f/fs) in Q13; the magnitude proxy tracks |s|.
//
//   $ ./examples/goertzel
#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/baseline.h"
#include "codegen/pipeline.h"
#include "dfl/frontend.h"
#include "ir/interp.h"
#include "sim/machine.h"

int main() {
  using namespace record;

  const char* source = R"(
    program goertzel;
    input x : fix;
    input c : fix;          // 2*cos(w) in Q13
    var s delay 2 : fix;
    output mag : fix;
    begin
      s := x + ((c * s@1) >> 13) - s@2;
      mag := (s >> 6) * (s >> 6) + (s@1 >> 6) * (s@1 >> 6);
    end
  )";
  Program prog = dfl::parseDflOrDie(source);

  TargetConfig cfg;
  RecordCompiler compiler(cfg, recordOptions());
  auto res = compiler.compile(prog);
  std::printf("compiled goertzel resonator: %d words\n%s\n",
              res.stats.sizeWords, res.prog.listing().c_str());

  // Probe frequency f = fs/8. Feed (a) a matching tone, (b) an off-bin tone.
  const double w = 2.0 * M_PI / 8.0;
  const int64_t c = static_cast<int64_t>(std::lround(2.0 * std::cos(w) *
                                                     8192.0));  // Q13
  auto runTone = [&](double toneW, const char* label) {
    Machine machine(res.prog);
    Interp gold(prog);
    machine.reset(true);
    int64_t lastSim = 0, lastGold = 0;
    const int n = 24;
    std::vector<int64_t> xs;
    for (int t = 0; t < n; ++t)
      xs.push_back(static_cast<int64_t>(std::lround(
          90.0 * std::sin(toneW * t))));
    gold.setStream("x", xs);
    gold.setStream("c", std::vector<int64_t>(n, c));
    for (int t = 0; t < n; ++t) {
      machine.writeSymbol("x", 0, xs[static_cast<size_t>(t)]);
      machine.writeSymbol("c", 0, c);
      machine.run();
      gold.run(1);
      lastSim = machine.readSymbol("mag");
      lastGold = gold.trace("mag")[static_cast<size_t>(t)];
      if (lastSim != lastGold) {
        std::printf("MISMATCH at t=%d: sim %lld vs golden %lld\n", t,
                    static_cast<long long>(lastSim),
                    static_cast<long long>(lastGold));
        std::exit(1);
      }
      machine.reset(false);
    }
    std::printf("%-18s final |s|^2 proxy = %6lld  (sim == golden)\n", label,
                static_cast<long long>(lastSim));
    return lastSim;
  };

  int64_t onBin = runTone(w, "tone at f0:");
  int64_t offBin = runTone(2.0 * M_PI / 3.0, "tone off-bin:");
  std::printf("\ndetector %s the probe frequency (on-bin %lld vs off-bin "
              "%lld)\n",
              onBin > 4 * offBin ? "SELECTS" : "does not separate",
              static_cast<long long>(onBin),
              static_cast<long long>(offBin));
  return onBin > offBin ? 0 : 1;
}
